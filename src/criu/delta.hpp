// Dirty-page delta compression for the epoch state transfer.
//
// NiLiCon ships every dirty page at full 4 KiB cost; Remus-lineage systems
// classically shrink the transfer by diffing each dirty page against the
// version the backup already holds and shipping only the changed byte
// ranges. This module implements that stage for the reproduction:
//
//  * delta_encode()/delta_apply(): a real XOR + run-length codec over two
//    4 KiB payloads. Runs of identical bytes are skipped; each changed run
//    ships as (offset, len, bytes). The codec round-trips bit-exactly
//    (property-tested) — apply(prev, encode(prev, cur)) == cur.
//  * DeltaCodec: the per-container epoch stage. It keeps a shared handle to
//    the last-shipped payload of every page (refcount bump, zero copy —
//    copy-on-write in the address space keeps those bytes frozen), encodes
//    each content page of an epoch image against it, and stamps the
//    modeled compressed size into PageRecord::wire_size. The backup folds
//    full payloads as before; only the *wire* accounting and the
//    decompress cost model change, which is exactly what EpochStateMsg::
//    wire_bytes / send_side_cost / backup commit consume.
//
// Pages with no previous shipped version (first touch, epoch 0) and pages
// whose encoded size would exceed the raw page ship uncompressed.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "criu/image.hpp"
#include "criu/shard.hpp"
#include "kernel/address_space.hpp"
#include "util/assert.hpp"
#include "util/worker_pool.hpp"

namespace nlc::criu {

/// Per-page wire framing overhead of a delta-encoded page (page number,
/// version, run count).
inline constexpr std::uint32_t kDeltaPageHeader = 12;
/// Per-run framing (offset u16 + length u16).
inline constexpr std::uint32_t kDeltaRunHeader = 4;

struct PageDelta {
  struct Run {
    std::uint32_t offset = 0;
    std::vector<std::byte> bytes;  // the new bytes of the changed range
  };
  std::vector<Run> runs;
  /// True when there is no usable reference (or compression lost): the raw
  /// page ships instead and `runs` is empty.
  bool raw = false;
  /// Modeled bytes on the wire, framing included; kPageSize when raw.
  std::uint32_t wire_size = 0;
};

namespace detail {

/// Computes framing + raw-fallback for an assembled run list (shared tail
/// of both encoder kernels).
inline void seal_delta(PageDelta& d) {
  std::uint32_t size = kDeltaPageHeader;
  for (const PageDelta::Run& r : d.runs) {
    size += kDeltaRunHeader + static_cast<std::uint32_t>(r.bytes.size());
  }
  if (size >= nlc::kPageSize) {
    d.raw = true;
    d.runs.clear();
    d.wire_size = static_cast<std::uint32_t>(nlc::kPageSize);
  } else {
    d.wire_size = size;
  }
}

/// First index in [i, n) where a and b differ; n if none. Word-at-a-time
/// on little-endian targets (countr_zero of the XOR picks the first
/// mismatching byte inside the word), byte-at-a-time otherwise.
inline std::uint32_t first_mismatch(const std::byte* a, const std::byte* b,
                                    std::uint32_t i, std::uint32_t n) {
  if constexpr (std::endian::native == std::endian::little) {
    while (i + 8 <= n) {
      std::uint64_t x = 0;
      std::uint64_t y = 0;
      std::memcpy(&x, a + i, 8);
      std::memcpy(&y, b + i, 8);
      if (x != y) {
        return i +
               static_cast<std::uint32_t>(std::countr_zero(x ^ y) >> 3);
      }
      i += 8;
    }
  }
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

}  // namespace detail

/// Encodes `cur` against reference `prev` (null => raw). Adjacent changed
/// bytes closer than the run-header cost are merged into one run, which is
/// what a real encoder would do to minimize framing. This is the reference
/// kernel: byte-at-a-time, used by the serial (NLC_SHARDS=1) pipeline and
/// as the oracle the fast kernel is property-tested against.
inline PageDelta delta_encode(const kern::PageBytes* prev,
                              const kern::PageBytes& cur) {
  NLC_CHECK(cur.size() == nlc::kPageSize);
  PageDelta d;
  if (prev == nullptr) {
    d.raw = true;
    d.wire_size = static_cast<std::uint32_t>(nlc::kPageSize);
    return d;
  }
  NLC_CHECK(prev->size() == nlc::kPageSize);
  std::uint32_t i = 0;
  const auto n = static_cast<std::uint32_t>(nlc::kPageSize);
  while (i < n) {
    if (cur[i] == (*prev)[i]) {
      ++i;
      continue;
    }
    // Start of a changed run; extend while bytes differ or the gap of
    // equal bytes is shorter than the framing a new run would cost.
    std::uint32_t start = i;
    std::uint32_t last_diff = i;
    ++i;
    while (i < n) {
      if (cur[i] != (*prev)[i]) {
        last_diff = i++;
      } else if (i - last_diff <= kDeltaRunHeader) {
        ++i;  // cheaper to include the equal gap than to open a new run
      } else {
        break;
      }
    }
    PageDelta::Run run;
    run.offset = start;
    run.bytes.assign(cur.begin() + start, cur.begin() + last_diff + 1);
    d.runs.push_back(std::move(run));
  }
  detail::seal_delta(d);
  return d;
}

/// Word-scanning encoder kernel used by the sharded pipeline (DESIGN.md
/// §10): equal spans — the overwhelming majority of bytes of a typical
/// dirty page — are skipped 8 bytes per compare instead of 1, with run
/// boundaries still resolved at byte granularity. Produces runs, raw flag
/// and wire_size bit-identical to delta_encode() for every input
/// (tests/shard_determinism_test, property_test).
inline PageDelta delta_encode_fast(const kern::PageBytes* prev,
                                   const kern::PageBytes& cur) {
  NLC_CHECK(cur.size() == nlc::kPageSize);
  PageDelta d;
  if (prev == nullptr) {
    d.raw = true;
    d.wire_size = static_cast<std::uint32_t>(nlc::kPageSize);
    return d;
  }
  NLC_CHECK(prev->size() == nlc::kPageSize);
  const std::byte* a = cur.data();
  const std::byte* b = prev->data();
  const auto n = static_cast<std::uint32_t>(nlc::kPageSize);
  std::uint32_t i = detail::first_mismatch(a, b, 0, n);
  while (i < n) {
    std::uint32_t start = i;
    std::uint32_t last_diff = i;
    ++i;
    while (i < n) {
      if (a[i] != b[i]) {
        last_diff = i++;
        continue;
      }
      // Equal byte: jump to the next mismatch and absorb the gap iff it
      // is no wider than the framing a new run would cost (the same
      // decision the reference kernel makes one byte at a time: it keeps
      // absorbing equal bytes while i - last_diff <= kDeltaRunHeader, so a
      // next diff at last_diff + kDeltaRunHeader + 1 still extends the
      // run).
      std::uint32_t j = detail::first_mismatch(a, b, i, n);
      if (j >= n || j - last_diff > kDeltaRunHeader + 1) {
        i = j;
        break;
      }
      last_diff = j;
      i = j + 1;
    }
    PageDelta::Run run;
    run.offset = start;
    run.bytes.assign(cur.begin() + start, cur.begin() + last_diff + 1);
    d.runs.push_back(std::move(run));
  }
  detail::seal_delta(d);
  return d;
}

/// Reconstructs the current page from the reference and a delta. For raw
/// deltas the caller ships the full payload, so `raw_payload` is applied.
inline kern::PageBytes delta_apply(const kern::PageBytes* prev,
                                   const PageDelta& d,
                                   const kern::PageBytes* raw_payload) {
  if (d.raw) {
    NLC_CHECK_MSG(raw_payload != nullptr, "raw delta without payload");
    return *raw_payload;
  }
  NLC_CHECK_MSG(prev != nullptr, "delta apply without reference page");
  kern::PageBytes out = *prev;
  for (const PageDelta::Run& r : d.runs) {
    NLC_CHECK(r.offset + r.bytes.size() <= out.size());
    std::copy(r.bytes.begin(), r.bytes.end(), out.begin() + r.offset);
  }
  return out;
}

/// What one epoch's compression stage did (feeds ReplicationMetrics).
struct EpochDeltaStats {
  std::uint64_t content_pages = 0;  // pages run through the encoder
  std::uint64_t delta_pages = 0;    // shipped as deltas
  std::uint64_t raw_pages = 0;      // no reference / compression lost
  std::uint64_t raw_bytes = 0;      // page bytes before compression
  std::uint64_t wire_bytes = 0;     // page bytes after compression

  double ratio() const {
    return raw_bytes == 0 ? 1.0
                          : static_cast<double>(wire_bytes) /
                                static_cast<double>(raw_bytes);
  }
};

/// Primary-side per-container compression stage. Keeps the last shipped
/// payload of every content page as a shared handle.
///
/// Sharded mode (shards > 1, DESIGN.md §10): the reference set is split
/// into independent per-shard maps keyed by shard_of(page) — a page's
/// references live in one shard forever, so encode_epoch() fans the
/// per-shard encode out on the worker pool with no locks, using the
/// word-scanning kernel. Stats merge by summation in shard order. Stamped
/// wire sizes and EpochDeltaStats are byte-identical for any shard count;
/// shards == 1 is the exact serial pre-shard engine (reference kernel,
/// one map).
class DeltaCodec {
 public:
  explicit DeltaCodec(int shards = 1)
      : prev_(static_cast<std::size_t>(shards < 1 ? 1 : shards)) {}

  int shards() const { return static_cast<int>(prev_.size()); }

  /// Encodes every content page of `img` against the previously shipped
  /// version, stamping PageRecord::wire_size, and advances the reference
  /// set. Accounting pages (no bytes to diff) keep full wire cost.
  /// `pool` (null = inline shard loop) carries the sharded fan-out.
  EpochDeltaStats encode_epoch(CheckpointImage& img,
                               util::WorkerPool* pool = nullptr) {
    if (shards() == 1) {
      EpochDeltaStats st;
      for (PageRecord& rec : img.pages) {
        encode_one(rec, prev_[0], st, /*fast=*/false);
      }
      return st;
    }
    ShardPlan plan = ShardPlan::build(img.pages, shards());
    std::vector<EpochDeltaStats> per(prev_.size());
    auto encode_shard = [&](std::size_t s) {
      for (std::uint32_t idx : plan.buckets[s]) {
        encode_one(img.pages[idx], prev_[s], per[s], /*fast=*/true);
      }
    };
    if (pool != nullptr) {
      pool->run(prev_.size(), encode_shard);
    } else {
      for (std::size_t s = 0; s < prev_.size(); ++s) encode_shard(s);
    }
    // Deterministic merge: u64 sums folded in shard-index order.
    EpochDeltaStats st;
    for (const EpochDeltaStats& p : per) {
      st.content_pages += p.content_pages;
      st.delta_pages += p.delta_pages;
      st.raw_pages += p.raw_pages;
      st.raw_bytes += p.raw_bytes;
      st.wire_bytes += p.wire_bytes;
    }
    return st;
  }

  std::uint64_t reference_pages() const {
    std::uint64_t n = 0;
    for (const auto& m : prev_) n += m.size();
    return n;
  }

 private:
  using RefMap = std::unordered_map<kern::PageNum, kern::PagePayload>;

  static void encode_one(PageRecord& rec, RefMap& refs, EpochDeltaStats& st,
                         bool fast) {
    if (!rec.has_content()) return;
    ++st.content_pages;
    st.raw_bytes += nlc::kPageSize;
    // One hash probe serves both the reference lookup and the
    // advance-reference store (the encode and stamp paths used to hit the
    // map separately per page).
    auto [it, inserted] = refs.try_emplace(rec.page);
    if (fast && !inserted && it->second == rec.content) {
      // Identity fast path: the record still carries the exact handle we
      // shipped last epoch. The address space clones-on-write whenever a
      // payload is shared — and our reference handle keeps it shared — so
      // handle identity proves the bytes are unchanged. The reference
      // kernel would scan 2x4 KiB to emit zero runs; the result is the
      // same header-only delta either way.
      rec.wire_size = kDeltaPageHeader;
      st.wire_bytes += kDeltaPageHeader;
      ++st.delta_pages;
      return;
    }
    const kern::PageBytes* ref = inserted ? nullptr : it->second.get();
    PageDelta d =
        fast ? delta_encode_fast(ref, *rec.content) : delta_encode(ref, *rec.content);
    rec.wire_size = d.wire_size;
    st.wire_bytes += d.wire_size;
    if (d.raw) {
      ++st.raw_pages;
    } else {
      ++st.delta_pages;
    }
    it->second = rec.content;  // refcount bump, no byte copy
  }

  std::vector<RefMap> prev_;
};

}  // namespace nlc::criu
