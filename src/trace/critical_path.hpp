// Per-epoch critical-path analysis over a flight-recorder stream
// (DESIGN.md §11).
//
// For every epoch that both paused and released output, the commit latency
// (pause begin → release instant, the paper's client-visible delay) is
// decomposed into six consecutive simulated-time segments:
//
//   freeze    pause begin → harvest begin   (freeze + input-block + barrier)
//   harvest   dirty-page harvest cost
//   encode    shard delta encode (sim cost rides the ship span; usually ~0)
//   tail      harvest/encode end → ship begin (resume + staging handoff)
//   ship      state transfer on the replication wire
//   ack-wait  ship end → release (backup recv + barrier wait + ack flight)
//
// The dominant stage is the argmax — the answer to "which stage made epoch
// 4712's commit latency spike".
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/events.hpp"

namespace nlc::trace {

enum PathStage : int {
  kPsFreeze,
  kPsHarvest,
  kPsEncode,
  kPsTail,
  kPsShip,
  kPsAckWait,
  kPsStageCount,
};

struct EpochAttribution {
  std::uint64_t epoch = 0;
  Time commit_latency = 0;  // pause begin → release, simulated ns
  std::array<Time, kPsStageCount> stage_ns{};
  int dominant = kPsFreeze;  // PathStage index with the largest share
};

class CriticalPath {
 public:
  /// Builds the per-epoch attribution from a drained event stream. Epochs
  /// with a truncated record (no release, e.g. in-flight at failover) are
  /// skipped — a flight recorder only explains what it saw complete.
  explicit CriticalPath(const std::vector<Event>& events);

  const std::vector<EpochAttribution>& epochs() const { return epochs_; }

  /// The attribution for one epoch, or nullptr if it wasn't recorded.
  const EpochAttribution* find(std::uint64_t epoch) const;

  /// Per-stage breakdown table (mean/p99/max ms, share of total latency,
  /// dominant-epoch count) for the bench harness and nlc_run to print.
  std::string table() const;

  static const char* stage_label(int ps);

 private:
  std::vector<EpochAttribution> epochs_;
};

}  // namespace nlc::trace
