// Per-epoch critical-path analysis over a flight-recorder stream
// (DESIGN.md §11).
//
// For every epoch that both paused and released output, the commit latency
// (pause begin → release instant, the paper's client-visible delay) is
// decomposed into six consecutive simulated-time segments:
//
//   freeze    pause begin → harvest begin   (freeze + input-block + barrier)
//   harvest   dirty-page harvest cost
//   encode    shard delta encode (sim cost rides the ship span; usually ~0)
//   tail      harvest/encode end → ship begin (resume + staging handoff)
//   ship      state transfer on the replication wire
//   ack-wait  ship end → release (backup recv + barrier wait + ack flight)
//
// The dominant stage is the argmax — the answer to "which stage made epoch
// 4712's commit latency spike".
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/events.hpp"

namespace nlc::trace {

enum PathStage : int {
  kPsFreeze,
  kPsHarvest,
  kPsEncode,
  kPsTail,
  kPsShip,
  kPsAckWait,
  kPsStageCount,
};

/// One epoch's six-segment decomposition in simulated time. Shared
/// vocabulary between the post-hoc CriticalPath analyzer (built from a
/// drained trace) and the runtime feed into core::EpochController, which
/// assembles the same sample online from the primary agent's epoch
/// stamps — so "what the trace blames" and "what the controller saw" can
/// never diverge.
struct SegmentSample {
  std::array<Time, kPsStageCount> stage_ns{};
  Time commit_latency = 0;  // pause begin → release, simulated ns
};

/// PathStage index with the largest share of `stage_ns` (ties resolve to
/// the earliest stage, matching std::max_element).
int dominant_stage(const std::array<Time, kPsStageCount>& stage_ns);

struct EpochAttribution {
  std::uint64_t epoch = 0;
  Time commit_latency = 0;  // pause begin → release, simulated ns
  std::array<Time, kPsStageCount> stage_ns{};
  int dominant = kPsFreeze;  // PathStage index with the largest share
};

/// Replay commit mode (DESIGN.md §14): per-log-segment decomposition of
/// the output-commit delay into the two segments that replace ship +
/// ack-wait — the log ship span (`log_ship`) and the wait for its ack
/// (`log_ack`: ship end → release instant).
struct LogSegmentAttribution {
  std::uint64_t seq = 0;
  Time ship_ns = 0;      // kLogShip span width
  Time ack_wait_ns = 0;  // ship end → kLogRelease instant
  Time total_ns = 0;     // ship begin → release
};

class CriticalPath {
 public:
  /// Builds the per-epoch attribution from a drained event stream. Epochs
  /// with a truncated record (no release, e.g. in-flight at failover) are
  /// skipped — a flight recorder only explains what it saw complete.
  explicit CriticalPath(const std::vector<Event>& events);

  const std::vector<EpochAttribution>& epochs() const { return epochs_; }

  /// Per-log-segment attribution (empty outside replay commit mode or when
  /// no segment completed its release while the recorder ran).
  const std::vector<LogSegmentAttribution>& log_segments() const {
    return log_segments_;
  }

  /// The attribution for one epoch, or nullptr if it wasn't recorded.
  const EpochAttribution* find(std::uint64_t epoch) const;

  /// Per-stage breakdown table (mean/p99/max ms, share of total latency,
  /// dominant-epoch count) for the bench harness and nlc_run to print.
  std::string table() const;

  static const char* stage_label(int ps);

 private:
  /// The replay-mode rows of table() (log-ship / log-ack breakdown).
  std::string log_table() const;
  std::vector<EpochAttribution> epochs_;
  std::vector<LogSegmentAttribution> log_segments_;
};

}  // namespace nlc::trace
