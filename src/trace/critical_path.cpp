#include "trace/critical_path.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "util/stats.hpp"

namespace nlc::trace {

namespace {

constexpr Time kUnset = -1;

// Raw per-epoch timestamps scraped from the stream.
struct EpochTimes {
  Time pause_b = kUnset, pause_e = kUnset;
  Time harvest_b = kUnset, harvest_e = kUnset;
  Time encode_b = kUnset, encode_e = kUnset;
  Time ship_b = kUnset, ship_e = kUnset;
  Time release = kUnset;
};

// Raw per-log-segment timestamps (replay commit mode).
struct SegTimes {
  Time ship_b = kUnset, ship_e = kUnset;
  Time release = kUnset;
};

Time clamp0(Time t) { return t < 0 ? 0 : t; }

}  // namespace

int dominant_stage(const std::array<Time, kPsStageCount>& stage_ns) {
  return static_cast<int>(
      std::max_element(stage_ns.begin(), stage_ns.end()) - stage_ns.begin());
}

CriticalPath::CriticalPath(const std::vector<Event>& events) {
  std::map<std::uint64_t, EpochTimes> times;
  std::map<std::uint64_t, SegTimes> seg_times;
  for (const Event& e : events) {
    const bool begin = e.type == EventType::kSpanBegin;
    const bool end = e.type == EventType::kSpanEnd;
    if (e.track == Track::kPrimary) {
      if (e.stage == Stage::kLogRelease) {
        if (e.type == EventType::kInstant) seg_times[e.arg].release = e.sim_ns;
        continue;
      }
      // Log-segment instants are keyed by seq, not epoch: keep them out of
      // the epoch map.
      if (e.stage == Stage::kLogAckRecv) continue;
      EpochTimes& t = times[e.arg];
      switch (e.stage) {
        case Stage::kPause:
          if (begin) t.pause_b = e.sim_ns;
          if (end) t.pause_e = e.sim_ns;
          break;
        case Stage::kHarvest:
          if (begin) t.harvest_b = e.sim_ns;
          if (end) t.harvest_e = e.sim_ns;
          break;
        case Stage::kEncode:
          if (begin) t.encode_b = e.sim_ns;
          if (end) t.encode_e = e.sim_ns;
          break;
        case Stage::kRelease:
          if (e.type == EventType::kInstant) t.release = e.sim_ns;
          break;
        default:
          break;
      }
    } else if (e.track == Track::kPrimaryShip && e.stage == Stage::kShip) {
      EpochTimes& t = times[e.arg];
      if (begin) t.ship_b = e.sim_ns;
      if (end) t.ship_e = e.sim_ns;
    } else if (e.track == Track::kPrimaryShip && e.stage == Stage::kLogShip) {
      SegTimes& t = seg_times[e.arg];
      if (begin) t.ship_b = e.sim_ns;
      if (end) t.ship_e = e.sim_ns;
    }
  }

  for (const auto& [seq, t] : seg_times) {
    if (t.ship_b == kUnset || t.release == kUnset) continue;
    LogSegmentAttribution a;
    a.seq = seq;
    const Time ship_e = t.ship_e == kUnset ? t.ship_b : t.ship_e;
    a.ship_ns = clamp0(ship_e - t.ship_b);
    a.ack_wait_ns = clamp0(t.release - ship_e);
    a.total_ns = clamp0(t.release - t.ship_b);
    log_segments_.push_back(a);
  }

  for (const auto& [epoch, t] : times) {
    if (t.pause_b == kUnset || t.release == kUnset) continue;
    EpochAttribution a;
    a.epoch = epoch;
    a.commit_latency = clamp0(t.release - t.pause_b);
    const Time harvest_b = t.harvest_b == kUnset ? t.pause_b : t.harvest_b;
    const Time harvest_e = t.harvest_e == kUnset ? harvest_b : t.harvest_e;
    const Time encode_w =
        t.encode_b == kUnset ? 0 : clamp0(t.encode_e - t.encode_b);
    const Time work_end = std::max(
        harvest_e, t.encode_e == kUnset ? harvest_e : t.encode_e);
    const Time ship_b = t.ship_b == kUnset ? work_end : t.ship_b;
    const Time ship_e = t.ship_e == kUnset ? ship_b : t.ship_e;
    a.stage_ns[kPsFreeze] = clamp0(harvest_b - t.pause_b);
    a.stage_ns[kPsHarvest] = clamp0(harvest_e - harvest_b);
    a.stage_ns[kPsEncode] = encode_w;
    a.stage_ns[kPsTail] = clamp0(ship_b - work_end);
    a.stage_ns[kPsShip] = clamp0(ship_e - ship_b);
    a.stage_ns[kPsAckWait] = clamp0(t.release - ship_e);
    a.dominant = dominant_stage(a.stage_ns);
    epochs_.push_back(a);
  }
}

const EpochAttribution* CriticalPath::find(std::uint64_t epoch) const {
  for (const auto& a : epochs_) {
    if (a.epoch == epoch) return &a;
  }
  return nullptr;
}

const char* CriticalPath::stage_label(int ps) {
  switch (ps) {
    case kPsFreeze: return "freeze";
    case kPsHarvest: return "harvest";
    case kPsEncode: return "encode";
    case kPsTail: return "tail";
    case kPsShip: return "ship";
    case kPsAckWait: return "ack-wait";
  }
  return "?";
}

std::string CriticalPath::table() const {
  std::string out;
  char line[160];
  if (epochs_.empty() && log_segments_.empty()) {
    return "critical path: no complete epochs in trace\n";
  }
  if (epochs_.empty()) return log_table();
  std::array<Samples, kPsStageCount> per_stage;
  std::array<std::size_t, kPsStageCount> dominant_count{};
  Samples latency;
  for (const auto& a : epochs_) {
    latency.add(to_millis(a.commit_latency));
    ++dominant_count[static_cast<std::size_t>(a.dominant)];
    for (int s = 0; s < kPsStageCount; ++s) {
      per_stage[static_cast<std::size_t>(s)].add(
          to_millis(a.stage_ns[static_cast<std::size_t>(s)]));
    }
  }
  std::snprintf(line, sizeof line,
                "critical path: %zu epochs, commit latency mean %.3f ms "
                "p99 %.3f ms\n",
                epochs_.size(), latency.mean(), latency.percentile(99));
  out += line;
  std::snprintf(line, sizeof line, "  %-8s %10s %10s %10s %8s %9s\n",
                "stage", "mean ms", "p99 ms", "max ms", "share", "dominant");
  out += line;
  const double total = latency.sum();
  for (int s = 0; s < kPsStageCount; ++s) {
    const Samples& ps = per_stage[static_cast<std::size_t>(s)];
    std::snprintf(line, sizeof line,
                  "  %-8s %10.3f %10.3f %10.3f %7.1f%% %9zu\n",
                  stage_label(s), ps.mean(), ps.percentile(99), ps.max(),
                  total > 0 ? ps.sum() / total * 100.0 : 0.0,
                  dominant_count[static_cast<std::size_t>(s)]);
    out += line;
  }
  out += log_table();
  return out;
}

std::string CriticalPath::log_table() const {
  if (log_segments_.empty()) return "";
  std::string out;
  char line[160];
  Samples ship, ack_wait, total;
  for (const auto& a : log_segments_) {
    ship.add(to_millis(a.ship_ns));
    ack_wait.add(to_millis(a.ack_wait_ns));
    total.add(to_millis(a.total_ns));
  }
  std::snprintf(line, sizeof line,
                "log commit path: %zu segments, ship->release mean %.3f ms "
                "p99 %.3f ms\n",
                log_segments_.size(), total.mean(), total.percentile(99));
  out += line;
  const double sum = total.sum();
  const Samples* rows[] = {&ship, &ack_wait};
  const char* labels[] = {"log-ship", "log-ack"};
  for (int i = 0; i < 2; ++i) {
    const Samples& ps = *rows[i];
    std::snprintf(line, sizeof line,
                  "  %-8s %10.3f %10.3f %10.3f %7.1f%%\n",
                  labels[i], ps.mean(), ps.percentile(99), ps.max(),
                  sum > 0 ? ps.sum() / sum * 100.0 : 0.0);
    out += line;
  }
  return out;
}

}  // namespace nlc::trace
