// Lock-free flight recorder: per-thread single-writer rings of fixed-size
// binary events (DESIGN.md §11).
//
// Concurrency contract:
//   * Each OS thread records into its own ring — exactly one writer per
//     ring, so the hot path is: relaxed seq fetch_add, write the 40-byte
//     slot, release-store of the count. No locks, no CAS loops.
//   * drain() is a non-consuming snapshot from any thread: acquire-load of
//     each ring's count makes every published slot visible. Multiple
//     exporters and the critical-path analyzer can all read the same run.
//   * A full ring drops the *newest* events and counts the drops: a
//     truncated-but-intact prefix beats a half-overwritten timeline, and
//     the ordering oracle (src/check) can trust what it does see.
//
// Cross-thread order: `seq` comes from one relaxed atomic counter, so the
// total order it induces is consistent with each thread's program order —
// enough for the oracle to compare release vs. ack even when both carry the
// same simulated timestamp.
//
// When Options::trace_level == kOff no Recorder exists at all; every
// instrumentation site is `if (trace_ != nullptr)` — one predictable branch,
// gated at <= 1% by bench_trace_overhead.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "trace/events.hpp"
#include "util/time.hpp"

namespace nlc::trace {

class Recorder {
 public:
  static constexpr std::size_t kDefaultRingCapacity = std::size_t{1} << 16;

  explicit Recorder(std::size_t ring_capacity = kDefaultRingCapacity);
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// The simulated timestamp is passed in by the call site (the recorder
  /// has no Simulation dependency); the wall stamp is taken internally via
  /// util::wall_now_ns().
  void span_begin(Track t, Stage s, Time sim_now, std::uint64_t arg = 0) {
    record(EventType::kSpanBegin, t, s, sim_now, arg);
  }
  void span_end(Track t, Stage s, Time sim_now, std::uint64_t arg = 0) {
    record(EventType::kSpanEnd, t, s, sim_now, arg);
  }
  void instant(Track t, Stage s, Time sim_now, std::uint64_t arg = 0) {
    record(EventType::kInstant, t, s, sim_now, arg);
  }
  void counter(Track t, Stage s, Time sim_now, std::uint64_t value) {
    record(EventType::kCounter, t, s, sim_now, value);
  }

  /// Snapshot of every published event across all rings, sorted by seq.
  /// Non-consuming; safe to call while other threads keep recording (events
  /// published after the snapshot simply aren't in it).
  std::vector<Event> drain() const;

  /// Events successfully recorded / dropped on ring overflow, across all
  /// rings.
  std::uint64_t recorded() const;
  std::uint64_t dropped() const;

  std::size_t ring_capacity() const { return capacity_; }

 private:
  struct Ring {
    explicit Ring(std::size_t cap, int tid) : slots(cap), thread_id(tid) {}
    std::vector<Event> slots;
    std::atomic<std::size_t> count{0};   // release-published by the writer
    std::atomic<std::uint64_t> drops{0};
    int thread_id;  // global small thread id of the owning thread
  };

  void record(EventType type, Track t, Stage s, Time sim_now,
              std::uint64_t arg);
  Ring* ring_for_this_thread();

  const std::size_t capacity_;
  const std::uint64_t id_;  // process-unique, keys the thread-local cache
  std::atomic<std::uint64_t> seq_{0};
  mutable std::mutex mu_;  // guards rings_ growth only (cold path)
  std::vector<std::unique_ptr<Ring>> rings_;
};

}  // namespace nlc::trace
