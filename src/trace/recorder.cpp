#include "trace/recorder.hpp"

#include <algorithm>

namespace nlc::trace {

namespace {

// Process-unique recorder ids: the thread-local ring cache is keyed by id,
// not by address, so a Recorder allocated at a freed Recorder's address can
// never satisfy a stale cache entry.
std::atomic<std::uint64_t> g_recorder_ids{1};

// Global small thread ids, assigned on first use per thread. Used to find
// this thread's existing ring after a cache miss (e.g. when one thread
// alternates between two recorders).
std::atomic<int> g_thread_ids{0};

int this_thread_id() {
  static thread_local int id = g_thread_ids.fetch_add(1, std::memory_order_relaxed);
  return id;
}

struct RingCache {
  std::uint64_t recorder_id = 0;
  void* ring = nullptr;
};
thread_local RingCache t_ring_cache;

}  // namespace

Recorder::Recorder(std::size_t ring_capacity)
    : capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      id_(g_recorder_ids.fetch_add(1, std::memory_order_relaxed)) {}

Recorder::Ring* Recorder::ring_for_this_thread() {
  if (t_ring_cache.recorder_id == id_) {
    return static_cast<Ring*>(t_ring_cache.ring);
  }
  const int tid = this_thread_id();
  std::lock_guard<std::mutex> lk(mu_);
  Ring* ring = nullptr;
  for (const auto& r : rings_) {
    if (r->thread_id == tid) {
      ring = r.get();
      break;
    }
  }
  if (ring == nullptr) {
    rings_.push_back(std::make_unique<Ring>(capacity_, tid));
    ring = rings_.back().get();
  }
  t_ring_cache = {id_, ring};
  return ring;
}

void Recorder::record(EventType type, Track t, Stage s, Time sim_now,
                      std::uint64_t arg) {
  Ring* ring = ring_for_this_thread();
  const std::size_t n = ring->count.load(std::memory_order_relaxed);
  if (n >= capacity_) {
    ring->drops.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Event& e = ring->slots[n];
  e.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  e.sim_ns = sim_now;
  e.wall_ns = util::wall_now_ns();
  e.arg = arg;
  e.type = type;
  e.track = t;
  e.stage = s;
  ring->count.store(n + 1, std::memory_order_release);
}

std::vector<Event> Recorder::drain() const {
  std::vector<Event> out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& r : rings_) {
      const std::size_t n = r->count.load(std::memory_order_acquire);
      out.insert(out.end(), r->slots.begin(),
                 r->slots.begin() + static_cast<std::ptrdiff_t>(n));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  return out;
}

std::uint64_t Recorder::recorded() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t n = 0;
  for (const auto& r : rings_) n += r->count.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t Recorder::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t n = 0;
  for (const auto& r : rings_) n += r->drops.load(std::memory_order_relaxed);
  return n;
}

}  // namespace nlc::trace
