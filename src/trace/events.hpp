// Flight-recorder event model (DESIGN.md §11).
//
// One fixed-size binary record per event, dual-stamped:
//   * sim_ns  — simulated time (nlc::Time), the deterministic domain every
//     protocol decision lives in;
//   * wall_ns — wall clock via util::wall_now_ns(), the only place real time
//     appears, used to see where the host actually spent cycles.
// Events never feed back into simulated behaviour; the recorder is an
// observer in the same sense as the src/check audit hooks.
#pragma once

#include <cstdint>

#include "util/time.hpp"

namespace nlc::trace {

/// What kind of record this is (maps 1:1 onto Chrome trace-event phases).
enum class EventType : std::uint8_t {
  kSpanBegin,  // "B" — a pipeline stage starts (kPause, kRecv, ...)
  kSpanEnd,    // "E" — the matching stage ends
  kInstant,    // "i" — a point event (ack received, heartbeat miss, ...)
  kCounter,    // "C" — a sampled value (dirty pages, buffered writes, ...)
};

/// Logical timeline the event belongs to. Exported as one Perfetto thread
/// per track so the epoch pipeline reads like the paper's Fig. 2: the two
/// agents on top, shipping / network / disk / detector lanes below.
enum class Track : std::uint8_t {
  kPrimary,      // PrimaryAgent epoch loop (pause, harvest, encode, resume)
  kPrimaryShip,  // staged state shipping — overlaps the next execute phase
  kBackup,       // BackupAgent (recv, fold, commit, materialize, restore)
  kNetPrimary,   // primary-side net: plug/ingress/marker release, retransmit
  kNetBackup,    // backup-side net: gratuitous ARP, post-failover retransmit
  kDrbd,         // backup DRBD: buffered writes, barriers, commits
  kDetector,     // failure detection: heartbeat misses, recovery trigger
  kCount,
};

/// Stage / event name. Span begin+end carry the same stage; instants and
/// counters use it as the event name.
enum class Stage : std::uint16_t {
  // PrimaryAgent epoch pipeline
  kPause,        // span: container frozen (freeze .. thaw)
  kHarvest,      // span: dirty-page harvest (simulated cost)
  kEncode,       // span: shard delta encode (wall cost; sim cost rides ship)
  kShip,         // span: state transfer on the replication wire
  kResume,       // instant: container thawed, execute phase begins
  kRelease,      // instant: epoch output released to the outside world
  kAckRecv,      // instant: backup ack arrived at the primary
  kBarrierSent,  // instant: DRBD epoch barrier issued by the primary
  // BackupAgent pipeline
  kRecv,         // span: receive + ingest of the epoch state message
  kBarrierWait,  // span: waiting for the DRBD barrier to arrive
  kAckSent,      // instant: ack sent back to the primary
  kFold,         // span: radix/list store fold of received pages (wall cost)
  kCommit,       // span: epoch commit (store fold applied + commit cost)
  kMaterialize,  // span: restore image materialization during failover
  kRestore,      // span: full failover restore (detection .. takeover)
  // net
  kPlugEngage,     // instant: sch_plug engaged on container egress
  kIngressBlock,   // instant: ingress filter set to buffer/drop
  kIngressUnblock, // instant: ingress filter passing again
  kPlugRelease,    // instant: buffered output released (arg = packets)
  kUnplug,         // instant: primary fail-stop (domain kill)
  kGratuitousArp,  // instant: backup announces the service address
  kRetransmit,     // instant: repaired-socket retransmission (arg = socket)
  kSocketRepair,   // instant: TCP connection restored in repair mode
  // blockdev
  kDrbdBuffer,   // instant: writes buffered into the open epoch (arg = n)
  kDrbdBarrier,  // instant: epoch barrier arrived at the backup disk
  kDrbdCommit,   // instant: epoch's buffered writes applied (arg = epoch)
  kDrbdDiscard,  // instant: uncommitted epochs discarded at failover
  // failure detection
  kHeartbeatMiss,  // instant: missed heartbeat (arg = consecutive misses)
  kRecoveryStart,  // instant: miss threshold hit, recovery begins
  // counters
  kDirtyPages,         // counter: pages harvested this epoch
  kWireBytes,          // counter: bytes shipped this epoch
  kDrbdBufferedWrites, // counter: writes buffered and not yet committed
  // replay commit mode (DESIGN.md §14); appended so older stage ids stay
  // stable for the golden trace fixtures
  kLogShip,     // span: event-log segment flush + ship (arg = seq)
  kLogAckRecv,  // instant: log-segment ack arrived at the primary (arg = seq)
  kLogRelease,  // instant: segment output released on log ack (arg = seq)
  kLogRecv,     // span: backup receive + chain validation (arg = seq)
  kLogAckSent,  // instant: segment ack sent to the primary (arg = seq)
  kLogReject,   // instant: segment failed chain validation (arg = seq)
  kReplay,      // span: failover deterministic replay (arg = epoch)
  kLogBytes,    // counter: event-log wire bytes per shipped segment
  // N-way quorum replication (DESIGN.md §16); appended for id stability.
  // Emitted only when replicas > 1, so two-node traces stay byte-identical.
  kReplicaAck,  // instant: one replica's epoch ack arrived (arg = epoch)
  kPromote,     // instant: arbiter elected a failover winner (arg = index)
  kResilver,    // span: full-state catch-up to a survivor (arg = index)
  kCount,
};

/// Fixed-size binary event record. 40 bytes; written by exactly one thread
/// into its own ring, ordered across threads by `seq`.
struct Event {
  std::uint64_t seq;      // global order (relaxed fetch_add at record time)
  Time sim_ns;            // simulated timestamp
  std::uint64_t wall_ns;  // util::wall_now_ns() at record time
  std::uint64_t arg;      // stage-specific payload (epoch, count, value, ...)
  EventType type;
  Track track;
  Stage stage;
};

inline const char* track_name(Track t) {
  switch (t) {
    case Track::kPrimary: return "primary-agent";
    case Track::kPrimaryShip: return "primary-ship";
    case Track::kBackup: return "backup-agent";
    case Track::kNetPrimary: return "net-primary";
    case Track::kNetBackup: return "net-backup";
    case Track::kDrbd: return "drbd-backup";
    case Track::kDetector: return "failure-detector";
    case Track::kCount: break;
  }
  return "?";
}

inline const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kPause: return "pause";
    case Stage::kHarvest: return "harvest";
    case Stage::kEncode: return "encode";
    case Stage::kShip: return "ship";
    case Stage::kResume: return "resume";
    case Stage::kRelease: return "release";
    case Stage::kAckRecv: return "ack-recv";
    case Stage::kBarrierSent: return "barrier-sent";
    case Stage::kRecv: return "recv";
    case Stage::kBarrierWait: return "barrier-wait";
    case Stage::kAckSent: return "ack-sent";
    case Stage::kFold: return "fold";
    case Stage::kCommit: return "commit";
    case Stage::kMaterialize: return "materialize";
    case Stage::kRestore: return "restore";
    case Stage::kPlugEngage: return "plug-engage";
    case Stage::kIngressBlock: return "ingress-block";
    case Stage::kIngressUnblock: return "ingress-unblock";
    case Stage::kPlugRelease: return "plug-release";
    case Stage::kUnplug: return "unplug";
    case Stage::kGratuitousArp: return "gratuitous-arp";
    case Stage::kRetransmit: return "retransmit";
    case Stage::kSocketRepair: return "socket-repair";
    case Stage::kDrbdBuffer: return "drbd-buffer";
    case Stage::kDrbdBarrier: return "drbd-barrier";
    case Stage::kDrbdCommit: return "drbd-commit";
    case Stage::kDrbdDiscard: return "drbd-discard";
    case Stage::kHeartbeatMiss: return "heartbeat-miss";
    case Stage::kRecoveryStart: return "recovery-start";
    case Stage::kDirtyPages: return "dirty-pages";
    case Stage::kWireBytes: return "wire-bytes";
    case Stage::kDrbdBufferedWrites: return "drbd-buffered-writes";
    case Stage::kLogShip: return "log-ship";
    case Stage::kLogAckRecv: return "log-ack-recv";
    case Stage::kLogRelease: return "log-release";
    case Stage::kLogRecv: return "log-recv";
    case Stage::kLogAckSent: return "log-ack-sent";
    case Stage::kLogReject: return "log-reject";
    case Stage::kReplay: return "replay";
    case Stage::kLogBytes: return "log-bytes";
    case Stage::kReplicaAck: return "replica-ack";
    case Stage::kPromote: return "promote";
    case Stage::kResilver: return "resilver";
    case Stage::kCount: break;
  }
  return "?";
}

}  // namespace nlc::trace
