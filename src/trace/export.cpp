#include "trace/export.hpp"

#include <array>
#include <cstdarg>
#include <cstdio>

namespace nlc::trace {

namespace {

char phase_char(EventType t) {
  switch (t) {
    case EventType::kSpanBegin: return 'B';
    case EventType::kSpanEnd: return 'E';
    case EventType::kInstant: return 'i';
    case EventType::kCounter: return 'C';
  }
  return '?';
}

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

}  // namespace

std::string chrome_trace_json(const std::vector<Event>& events,
                              const ExportOptions& opts) {
  std::string out;
  out.reserve(events.size() * 120 + 1024);
  out += "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";

  // One Perfetto thread per track, named and ordered like the paper's
  // pipeline figure (agents on top, net/disk/detector lanes below).
  for (int t = 0; t < static_cast<int>(Track::kCount); ++t) {
    append_fmt(out,
               "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
               "\"tid\": %d, \"args\": {\"name\": \"%s\"}},\n",
               t + 1, track_name(static_cast<Track>(t)));
    append_fmt(out,
               "{\"name\": \"thread_sort_index\", \"ph\": \"M\", \"pid\": 1, "
               "\"tid\": %d, \"args\": {\"sort_index\": %d}},\n",
               t + 1, t + 1);
  }

  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    const int tid = static_cast<int>(e.track) + 1;
    const double ts_us = static_cast<double>(e.sim_ns) / 1e3;
    if (e.type == EventType::kCounter) {
      append_fmt(out,
                 "{\"name\": \"%s\", \"cat\": \"nlc\", \"ph\": \"C\", "
                 "\"pid\": 1, \"tid\": %d, \"ts\": %.3f, "
                 "\"args\": {\"value\": %llu}}",
                 stage_name(e.stage), tid, ts_us,
                 static_cast<unsigned long long>(e.arg));
    } else {
      append_fmt(out,
                 "{\"name\": \"%s\", \"cat\": \"nlc\", \"ph\": \"%c\", "
                 "\"pid\": 1, \"tid\": %d, \"ts\": %.3f",
                 stage_name(e.stage), phase_char(e.type), tid, ts_us);
      if (e.type == EventType::kInstant) out += ", \"s\": \"t\"";
      append_fmt(out, ", \"args\": {\"arg\": %llu",
                 static_cast<unsigned long long>(e.arg));
      if (opts.wall_clock) {
        append_fmt(out, ", \"wall_ns\": %llu",
                   static_cast<unsigned long long>(e.wall_ns));
      }
      out += "}}";
    }
    out += i + 1 < events.size() ? ",\n" : "\n";
  }
  out += "]\n}\n";
  return out;
}

bool write_chrome_trace(const std::string& path, const Recorder& rec,
                        const ExportOptions& opts) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = chrome_trace_json(rec.drain(), opts);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return true;
}

std::string text_timeline(const std::vector<Event>& events) {
  std::string out;
  out.reserve(events.size() * 64);
  for (const Event& e : events) {
    append_fmt(out, "%12.3f ms  %-16s %c %-20s arg=%llu\n",
               to_millis(e.sim_ns), track_name(e.track), phase_char(e.type),
               stage_name(e.stage), static_cast<unsigned long long>(e.arg));
  }
  return out;
}

SpanCheck validate_spans(const std::vector<Event>& events) {
  SpanCheck res;
  std::array<std::vector<Stage>, static_cast<std::size_t>(Track::kCount)>
      open;
  for (const Event& e : events) {
    auto& stack = open[static_cast<std::size_t>(e.track)];
    if (e.type == EventType::kSpanBegin) {
      stack.push_back(e.stage);
    } else if (e.type == EventType::kSpanEnd) {
      if (stack.empty()) {
        if (res.ok) {
          res.ok = false;
          res.error = std::string("span_end '") + stage_name(e.stage) +
                      "' on track '" + track_name(e.track) +
                      "' with no open span";
        }
      } else if (stack.back() != e.stage) {
        if (res.ok) {
          res.ok = false;
          res.error = std::string("span_end '") + stage_name(e.stage) +
                      "' on track '" + track_name(e.track) +
                      "' does not match open span '" +
                      stage_name(stack.back()) + "'";
        }
        stack.pop_back();  // best effort: keep scanning past the mismatch
      } else {
        stack.pop_back();
      }
    }
  }
  for (const auto& stack : open) res.unclosed += stack.size();
  return res;
}

}  // namespace nlc::trace
