// Trace exporters (DESIGN.md §11): Chrome trace-event JSON (loadable in
// Perfetto / chrome://tracing) and a compact text timeline, plus the span
// stream validator used by tests and the critical-path analyzer.
#pragma once

#include <string>
#include <vector>

#include "trace/events.hpp"
#include "trace/recorder.hpp"

namespace nlc::trace {

struct ExportOptions {
  /// Include wall-clock stamps in each event's args. On by default; the
  /// golden-file test turns it off because wall time is the one
  /// nondeterministic field in an otherwise byte-stable export.
  bool wall_clock = true;
};

/// Chrome trace-event JSON ("traceEvents" array format). One Perfetto
/// thread per Track (thread_name metadata), span begin/end as B/E phases,
/// instants as "i", counters as "C"; ts = simulated microseconds.
std::string chrome_trace_json(const std::vector<Event>& events,
                              const ExportOptions& opts = {});

/// Drains the recorder and writes chrome_trace_json to `path`.
/// Returns false if the file can't be opened.
bool write_chrome_trace(const std::string& path, const Recorder& rec,
                        const ExportOptions& opts = {});

/// Compact human-readable timeline, one line per event, ordered by seq.
std::string text_timeline(const std::vector<Event>& events);

/// Span-stream validation result.
struct SpanCheck {
  bool ok = true;         // false on a structural violation (mismatched end)
  std::string error;      // first violation, human-readable
  std::size_t unclosed = 0;  // spans still open at end of stream
};

/// Checks per-track strict LIFO nesting of span begin/end pairs. Unclosed
/// spans are tolerated (a flight recorder is truncated by design — e.g.
/// the primary killed mid-pause) and only counted; a span_end whose stage
/// doesn't match the innermost open span on its track is a violation.
SpanCheck validate_spans(const std::vector<Event>& events);

}  // namespace nlc::trace
