#include "check/trace_oracle.hpp"

#include <unordered_map>

#include "util/assert.hpp"

namespace nlc::check {

TraceOrderStats audit_trace_ordering(const std::vector<trace::Event>& events,
                                     int quorum_k) {
  NLC_CHECK_MSG(quorum_k >= 1, "trace oracle: quorum_k must be >= 1");
  TraceOrderStats stats;
  // High-water marks mirror the live checkers' epoch-0 discipline: the
  // boolean, not the counter, distinguishes "epoch 0 done" from "nothing
  // yet" (epochs are 0-based).
  std::uint64_t acked = 0;
  bool any_ack = false;
  std::uint64_t barrier = 0;
  bool any_barrier = false;
  std::uint64_t log_acked = 0;
  bool any_log_ack = false;
  // Per-epoch kReplicaAck instant count. Each replica acks each epoch
  // exactly once (FIFO per-replica channels), so this count is the number
  // of replicas whose cursor covers the epoch.
  std::unordered_map<std::uint64_t, int> replica_acks;
  bool promoted = false;

  for (const trace::Event& e : events) {
    if (e.track == trace::Track::kPrimary &&
        e.type == trace::EventType::kInstant &&
        e.stage == trace::Stage::kAckRecv) {
      if (!any_ack || e.arg > acked) acked = e.arg;
      any_ack = true;
    } else if (e.track == trace::Track::kPrimary &&
               e.type == trace::EventType::kInstant &&
               e.stage == trace::Stage::kReplicaAck) {
      ++replica_acks[e.arg];
    } else if (e.track == trace::Track::kDetector &&
               e.type == trace::EventType::kInstant &&
               e.stage == trace::Stage::kPromote) {
      promoted = true;
    } else if (e.track == trace::Track::kBackup &&
               e.type == trace::EventType::kSpanBegin &&
               e.stage == trace::Stage::kResilver) {
      NLC_CHECK_MSG(promoted,
                    "trace oracle: resilver span opened before the arbiter "
                    "recorded a promotion");
      ++stats.promotion_checks;
    } else if (e.track == trace::Track::kPrimary &&
               e.type == trace::EventType::kInstant &&
               e.stage == trace::Stage::kLogAckRecv) {
      if (!any_log_ack || e.arg > log_acked) log_acked = e.arg;
      any_log_ack = true;
    } else if (e.track == trace::Track::kPrimary &&
               e.type == trace::EventType::kInstant &&
               e.stage == trace::Stage::kLogRelease) {
      NLC_CHECK_MSG(any_log_ack && log_acked >= e.arg,
                    "trace oracle: log segment output released before its "
                    "ack reached the primary");
      ++stats.log_release_checks;
    } else if (e.track == trace::Track::kDrbd &&
               e.type == trace::EventType::kInstant &&
               e.stage == trace::Stage::kDrbdBarrier) {
      if (!any_barrier || e.arg > barrier) barrier = e.arg;
      any_barrier = true;
    } else if (e.track == trace::Track::kPrimary &&
               e.type == trace::EventType::kInstant &&
               e.stage == trace::Stage::kRelease) {
      NLC_CHECK_MSG(any_ack && acked >= e.arg,
                    "trace oracle: epoch output released before its ack "
                    "reached the primary");
      ++stats.release_checks;
      if (quorum_k > 1) {
        auto it = replica_acks.find(e.arg);
        NLC_CHECK_MSG(it != replica_acks.end() && it->second >= quorum_k,
                      "trace oracle: epoch output released before a quorum "
                      "of replica acks arrived");
        ++stats.quorum_release_checks;
      }
    } else if (e.track == trace::Track::kBackup &&
               e.type == trace::EventType::kSpanBegin &&
               e.stage == trace::Stage::kCommit) {
      NLC_CHECK_MSG(any_barrier && barrier >= e.arg,
                    "trace oracle: epoch commit began before its DRBD "
                    "barrier arrived at the backup");
      ++stats.commit_checks;
    }
  }
  return stats;
}

}  // namespace nlc::check
