#include "check/audit.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "kernel/kernel.hpp"
#include "kernel/process.hpp"

namespace nlc::check {

// ---------------------------------------------------------------------------
// Shared restore-equivalence walk

std::uint64_t restore_equivalence_walk(const criu::PageStore& store,
                                       const kern::Kernel& kernel,
                                       kern::ContainerId cid) {
  // Restored memory must equal the committed page store byte for byte:
  // walk the restored container's resident content pages before the
  // application resumes and compare against the store's committed copies.
  std::uint64_t compared = 0;
  for (const kern::Process* p : kernel.container_processes(cid)) {
    // Walk pages in ascending page-number order, not hash order: when more
    // than one page diverges, the report (and the failing-check identity a
    // negative test asserts on) must not depend on allocation addresses.
    std::vector<std::pair<kern::PageNum, const kern::AddressSpace::PageState*>>
        resident;
    resident.reserve(p->mm().page_states().size());
    // NLC_LINT_OK(unordered-iter): hash-order collection; sorted below
    for (const auto& [pg, st] : p->mm().page_states()) {
      resident.emplace_back(pg, &st);
    }
    std::sort(resident.begin(), resident.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [page, state_ptr] : resident) {
      const kern::AddressSpace::PageState& state = *state_ptr;
      if (!state.payload) continue;
      const criu::PageRecord* rec = store.lookup(page);
      NLC_CHECK_MSG(rec != nullptr,
                    "audit: restored content page missing from the store");
      NLC_CHECK_MSG(rec->content != nullptr,
                    "audit: restored bytes for an accounting-only page");
      if (rec->content.get() != state.payload.get()) {
        NLC_CHECK_MSG(*rec->content == *state.payload,
                      "audit: restored memory diverged from the committed "
                      "page store");
      }
      ++compared;
    }
  }
  return compared;
}

// ---------------------------------------------------------------------------
// ReplicaAudit (extra backup replicas, DESIGN.md §16)

void ReplicaAudit::on_ack_sent(std::uint64_t epoch,
                               std::uint64_t last_barrier) {
  epoch_.ack_sent(epoch, last_barrier);
}

void ReplicaAudit::on_commit_begin(std::uint64_t epoch) {
  epoch_.commit_begin(epoch);
}

void ReplicaAudit::on_commit(const core::EpochStateMsg& msg) {
  store_.check(cluster_->backup(index_).page_store(), msg.image);
  epoch_.committed(msg.epoch);
}

void ReplicaAudit::on_recovery_started(std::uint64_t committed_epoch) {
  epoch_.recovery_started(committed_epoch);
}

void ReplicaAudit::on_recovered(std::uint64_t committed_epoch) {
  epoch_.recovered(committed_epoch);
  restore_equiv_checks_ += restore_equivalence_walk(
      cluster_->backup(index_).page_store(),
      cluster_->backup_kernel_of(index_), cid_);
}

void ReplicaAudit::on_resilver_adopted(std::uint64_t committed_epoch) {
  epoch_.resilver_adopted(committed_epoch);
}

void ReplicaAudit::on_drbd_epoch_applied(std::uint64_t epoch,
                                         std::uint64_t /*writes*/) {
  epoch_.drbd_applied(epoch);
}

void ReplicaAudit::on_drbd_discard(std::uint64_t /*writes*/) {
  epoch_.drbd_discarded();
}

// ---------------------------------------------------------------------------
// InvariantAuditor

InvariantAuditor::InvariantAuditor(core::Cluster& cluster,
                                   kern::ContainerId cid,
                                   const core::Options& opts)
    : cluster_(&cluster), cid_(cid), level_(opts.audit_level),
      delta_enabled_(opts.delta_compress_pages),
      replay_mode_(opts.commit_mode == core::CommitMode::kReplay),
      quorum_(opts.replicas, opts.resolved_quorum()) {
  NLC_CHECK_MSG(level_ != core::AuditLevel::kOff,
                "constructing an auditor with auditing off");
  NLC_CHECK_MSG(cluster.primary_agent != nullptr &&
                    cluster.backup_agent != nullptr,
                "auditor needs both agents (attach from on_agents_created)");
  const kern::Container* cont = cluster.primary_kernel->container(cid);
  NLC_CHECK_MSG(cont != nullptr, "auditing an unknown container");
  plug_ = &cluster.primary_tcp.plug(
      static_cast<net::IpAddr>(cont->service_ip()));
  for (int i = 1; i < cluster.replica_count(); ++i) {
    replica_audits_.push_back(
        std::make_unique<ReplicaAudit>(cluster, i, cid));
  }
}

InvariantAuditor::~InvariantAuditor() { detach(); }

void InvariantAuditor::attach() {
  if (attached_) return;
  plug_->set_observer(this);
  cluster_->primary_agent->set_audit_hooks(this);
  cluster_->backup_agent->set_audit_hooks(this);
  cluster_->drbd_backup->set_observer(this);
  for (std::size_t i = 0; i < replica_audits_.size(); ++i) {
    core::Cluster::BackupReplica& r = *cluster_->extra_backups[i];
    r.agent->set_audit_hooks(replica_audits_[i].get());
    r.drbd->set_observer(replica_audits_[i].get());
  }
  if (cluster_->arbiter != nullptr) {
    // NLC_LINT_OK(detached-this): detach() clears the hook in ~auditor
    cluster_->arbiter->set_on_promoted(
        [this](int winner,
               const std::vector<core::PromotionCandidate>& cs) {
          std::vector<QuorumCommitChecker::Candidate> conv;
          conv.reserve(cs.size());
          for (const core::PromotionCandidate& c : cs) {
            conv.push_back(QuorumCommitChecker::Candidate{
                c.index, c.any_ack, c.acked_epoch, c.committed_nd_entries});
          }
          quorum_.promoted(winner, conv);
        });
  }
  if (level_ == core::AuditLevel::kContinuous) {
    // NLC_LINT_OK(detached-this): detach() clears the probe in ~auditor
    cluster_->sim.set_audit_probe([this] { sweep(); }, kProbeEveryEvents);
  }
  attached_ = true;
}

void InvariantAuditor::detach() {
  if (!attached_) return;
  plug_->set_observer(nullptr);
  if (cluster_->primary_agent) cluster_->primary_agent->set_audit_hooks(nullptr);
  if (cluster_->backup_agent) cluster_->backup_agent->set_audit_hooks(nullptr);
  cluster_->drbd_backup->set_observer(nullptr);
  for (std::size_t i = 0; i < replica_audits_.size(); ++i) {
    core::Cluster::BackupReplica& r = *cluster_->extra_backups[i];
    if (r.agent) r.agent->set_audit_hooks(nullptr);
    r.drbd->set_observer(nullptr);
  }
  if (cluster_->arbiter != nullptr) cluster_->arbiter->set_on_promoted({});
  if (level_ == core::AuditLevel::kContinuous) {
    cluster_->sim.set_audit_probe(nullptr);
  }
  attached_ = false;
}

AuditStats InvariantAuditor::stats() const {
  AuditStats st;
  st.output_commit_checks = occ_.checks();
  st.epoch_commit_checks = epoch_.checks();
  st.payload_pins = freeze_.pins();
  st.payload_verifications = freeze_.verifications();
  st.store_equivalence_checks = store_.checks();
  st.delta_replay_checks = delta_.checks();
  st.restore_equivalence_checks = restore_equiv_checks_;
  st.replay_equivalence_checks = replay_.checks();
  st.quorum_checks = quorum_.checks();
  st.sweeps = sweeps_;
  for (const auto& ra : replica_audits_) {
    st.epoch_commit_checks += ra->epoch_checks();
    st.store_equivalence_checks += ra->store_checks();
    st.restore_equivalence_checks += ra->restore_checks();
  }
  return st;
}

void InvariantAuditor::final_audit() {
  freeze_.verify_all();
  NLC_CHECK_MSG(occ_.mirrored_packets() == plug_->pending_packets(),
                "audit: plug buffer diverged from the output-commit mirror");
}

// ---------------------------------------------------------------------------
// Plug (primary egress)

void InvariantAuditor::on_plug_enqueue(const net::Packet&) {
  occ_.packet_buffered();
}

void InvariantAuditor::on_plug_marker(std::uint64_t marker) {
  last_plug_marker_ = marker;
  saw_plug_marker_ = true;
}

void InvariantAuditor::on_plug_release(std::uint64_t marker,
                                       std::uint64_t packets) {
  std::uint64_t expected =
      std::exchange(pending_release_epoch_, OutputCommitChecker::kAnyEpoch);
  occ_.released(marker, packets, expected);
}

void InvariantAuditor::on_plug_discard(std::uint64_t packets) {
  occ_.discarded(packets);
}

// ---------------------------------------------------------------------------
// Primary agent

void InvariantAuditor::on_state_ready(const core::EpochStateMsg& msg,
                                      bool initial) {
  NLC_CHECK_MSG(msg.epoch == msg.image.epoch,
                "audit: state message and image disagree on the epoch");
  NLC_CHECK_MSG(msg.image.full == initial,
                "audit: only the initial synchronization ships a full image");
  if (replay_mode_) replay_.checkpoint_stamped(msg.nd_entries, msg.nd_fp);
  if (level_ == core::AuditLevel::kContinuous) {
    // The payloads in this image must stay frozen from here through ship,
    // fold and store residency, no matter what the container writes next.
    pin_image_payloads(msg.image);
    delta_.replay(msg.image, delta_enabled_);
  }
}

void InvariantAuditor::on_marker_inserted(std::uint64_t epoch,
                                          std::uint64_t marker) {
  NLC_CHECK_MSG(saw_plug_marker_ && marker == last_plug_marker_,
                "audit: agent marker does not match the plug's last marker");
  occ_.marker_inserted(epoch, marker);
}

void InvariantAuditor::on_ack_received(std::uint64_t epoch) {
  // Replay mode commits output per log segment: the occ_ mirror runs on
  // segment seq numbers, so epoch acks must not leak into it.
  if (!replay_mode_) occ_.ack_received(epoch);
  // With replicas > 1 this hook reports *quorum* advances; re-derive the
  // quorum cursor from the per-replica mirror. At N = 1 every ack is a
  // quorum advance and the check degenerates to cursor equality.
  quorum_.quorum_advanced(epoch);
}

void InvariantAuditor::on_release(std::uint64_t epoch) {
  pending_release_epoch_ = epoch;
}

void InvariantAuditor::on_log_shipped(const core::LogSegmentMsg& seg,
                                      std::uint64_t marker) {
  NLC_CHECK_MSG(saw_plug_marker_ && marker == last_plug_marker_,
                "audit: segment marker does not match the plug's last "
                "marker");
  // Segment seq plays the epoch role in the output-commit mirror: output
  // up to this marker may leave only after this segment's ack.
  occ_.marker_inserted(seg.seq, marker);
  replay_.log_shipped(seg);
}

void InvariantAuditor::on_log_ack_received(std::uint64_t seq) {
  occ_.ack_received(seq);
}

void InvariantAuditor::on_log_release(std::uint64_t seq) {
  pending_release_epoch_ = seq;
  quorum_.log_release(seq);
}

void InvariantAuditor::on_replica_ack(int replica, std::uint64_t epoch) {
  quorum_.replica_ack(replica, epoch);
}

void InvariantAuditor::on_replica_log_ack(int replica, std::uint64_t seq) {
  quorum_.replica_log_ack(replica, seq);
}

// ---------------------------------------------------------------------------
// Backup agent

void InvariantAuditor::on_ack_sent(std::uint64_t epoch,
                                   std::uint64_t last_barrier) {
  epoch_.ack_sent(epoch, last_barrier);
}

void InvariantAuditor::on_commit_begin(std::uint64_t epoch) {
  epoch_.commit_begin(epoch);
}

void InvariantAuditor::on_commit(const core::EpochStateMsg& msg) {
  store_.check(cluster_->backup_agent->page_store(), msg.image);
  epoch_.committed(msg.epoch);
  if (replay_mode_) replay_.committed(msg.nd_entries, msg.nd_fp);
  if (level_ == core::AuditLevel::kContinuous) {
    // The fold copied shared handles; any mutation since harvest would
    // show here and in the budgeted re-fingerprint.
    freeze_.verify_budget(kVerifyBudget);
  }
}

void InvariantAuditor::on_recovery_started(std::uint64_t committed_epoch) {
  epoch_.recovery_started(committed_epoch);
}

void InvariantAuditor::on_recovered(std::uint64_t committed_epoch) {
  epoch_.recovered(committed_epoch);
  restore_equiv_checks_ += restore_equivalence_walk(
      cluster_->backup_agent->page_store(), *cluster_->backup_kernel, cid_);
  if (level_ == core::AuditLevel::kContinuous) freeze_.verify_all();
}

void InvariantAuditor::on_resilver_adopted(std::uint64_t committed_epoch) {
  epoch_.resilver_adopted(committed_epoch);
}

void InvariantAuditor::on_log_ingested(const core::LogSegmentMsg& seg,
                                       bool accepted) {
  replay_.log_ingested(seg, accepted);
}

void InvariantAuditor::on_replayed(std::uint64_t final_fp,
                                   std::uint64_t entries_replayed) {
  replay_.replayed(final_fp, entries_replayed);
}

// ---------------------------------------------------------------------------
// DRBD (backup disk buffer)

void InvariantAuditor::on_drbd_epoch_applied(std::uint64_t epoch,
                                             std::uint64_t /*writes*/) {
  epoch_.drbd_applied(epoch);
}

void InvariantAuditor::on_drbd_discard(std::uint64_t /*writes*/) {
  epoch_.drbd_discarded();
}

// ---------------------------------------------------------------------------

void InvariantAuditor::sweep() {
  ++sweeps_;
  NLC_CHECK_MSG(occ_.mirrored_packets() == plug_->pending_packets(),
                "audit: plug buffer diverged from the output-commit mirror");
  freeze_.verify_budget(kVerifyBudget);
}

void InvariantAuditor::pin_image_payloads(const criu::CheckpointImage& img) {
  for (const criu::PageRecord& rec : img.pages) freeze_.pin(rec.content);
}

}  // namespace nlc::check
