// Invariant checkers for the NiLiCon replication protocol.
//
// Each class audits one of the paper's correctness properties from a
// stream of observation events (fed by the InvariantAuditor in audit.hpp,
// or directly by tests). They keep their own mirror of the protocol state
// they audit — the point is to catch the real components lying, so nothing
// here trusts a component's own bookkeeping. A violated invariant throws
// InvariantError via NLC_CHECK; a clean run only bumps check counters.
//
// The checkers are deliberately free of simulation/cluster dependencies so
// negative tests can drive a violation in a few lines.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/protocol.hpp"
#include "criu/delta.hpp"
#include "criu/image.hpp"
#include "criu/pagestore.hpp"
#include "kernel/address_space.hpp"
#include "util/assert.hpp"

namespace nlc::check {

/// FNV-1a fingerprint of a page payload — the freeze stamp the COW audit
/// compares against.
std::uint64_t fnv1a_page(const kern::PageBytes& bytes);

/// Counters the auditor reports after a run (one per invariant family).
struct AuditStats {
  std::uint64_t output_commit_checks = 0;
  std::uint64_t epoch_commit_checks = 0;
  std::uint64_t payload_pins = 0;
  std::uint64_t payload_verifications = 0;
  std::uint64_t store_equivalence_checks = 0;
  std::uint64_t delta_replay_checks = 0;
  std::uint64_t restore_equivalence_checks = 0;
  /// Replay commit mode (DESIGN.md §14): event-chain continuity, checkpoint
  /// stamps, backup accept decisions and failover replay re-verified
  /// against independent primary/backup chain mirrors.
  std::uint64_t replay_equivalence_checks = 0;
  std::uint64_t sweeps = 0;
  /// Post-hoc orderings re-verified from the flight-recorder stream
  /// (trace_oracle.hpp); non-zero only when both auditing and tracing ran.
  std::uint64_t trace_order_checks = 0;
  /// N-way quorum replication (DESIGN.md §16): per-replica cursor
  /// monotonicity, quorum-cursor re-derivation, K-of-N release gating and
  /// the promotion decision.
  std::uint64_t quorum_checks = 0;

  std::uint64_t total() const {
    return output_commit_checks + epoch_commit_checks +
           payload_verifications + store_equivalence_checks +
           delta_replay_checks + restore_equivalence_checks +
           replay_equivalence_checks + trace_order_checks + quorum_checks;
  }
};

/// §IV output commit, per packet: buffered output of epoch k may reach the
/// wire only after the backup acknowledged epoch k. Mirrors the plug
/// buffer as (epoch, marker, packet-count) segments and checks every
/// release against the newest ack the primary received.
class OutputCommitChecker {
 public:
  static constexpr std::uint64_t kAnyEpoch =
      std::numeric_limits<std::uint64_t>::max();

  /// A packet entered the plug buffer (current, still unmarked epoch).
  void packet_buffered() { ++open_packets_; }

  /// Marker `marker` closed epoch `epoch`'s output window.
  void marker_inserted(std::uint64_t epoch, std::uint64_t marker);

  /// The primary received an ack for `epoch`.
  void ack_received(std::uint64_t epoch);

  /// The plug released everything up to `marker`, transmitting `packets`
  /// packets. `expected_epoch` is the epoch the agent believes it is
  /// committing (kAnyEpoch when unknown to the caller).
  void released(std::uint64_t marker, std::uint64_t packets,
                std::uint64_t expected_epoch = kAnyEpoch);

  /// Failover: the plug dropped `packets` uncommitted packets.
  void discarded(std::uint64_t packets);

  /// Packets the mirror believes are buffered (cross-checked against
  /// PlugQdisc::pending_packets() by the auditor's sweep).
  std::uint64_t mirrored_packets() const;

  std::uint64_t checks() const { return checks_; }

 private:
  struct Segment {
    std::uint64_t epoch = 0;
    std::uint64_t marker = 0;
    std::uint64_t packets = 0;
  };
  std::deque<Segment> segments_;
  std::uint64_t open_packets_ = 0;
  std::uint64_t acked_ = 0;
  bool has_ack_ = false;
  std::uint64_t checks_ = 0;
};

/// Backup-side epoch lifecycle: acks sequential and after the epoch's DRBD
/// barrier; state commits sequential, exactly once, only for acknowledged
/// epochs; buffered disk writes applied only inside the fold of their
/// epoch; uncommitted writes discarded only during failover.
class EpochCommitChecker {
 public:
  void ack_sent(std::uint64_t epoch, std::uint64_t last_barrier);
  void commit_begin(std::uint64_t epoch);
  void committed(std::uint64_t epoch);
  void drbd_applied(std::uint64_t epoch);
  void drbd_discarded();
  void recovery_started(std::uint64_t committed_epoch);
  void recovered(std::uint64_t committed_epoch);
  /// Re-silvering (DESIGN.md §16): this survivor adopted the promoted
  /// winner's committed state at `committed_epoch`. Fast-forwards the
  /// mirror (the winner is at least as caught up) and authorizes exactly
  /// one DRBD-tail discard outside a recovery bracket.
  void resilver_adopted(std::uint64_t committed_epoch);

  std::uint64_t committed_count() const { return next_commit_; }
  bool in_recovery() const { return in_recovery_; }
  std::uint64_t checks() const { return checks_; }

 private:
  std::uint64_t next_ack_ = 0;
  std::uint64_t next_commit_ = 0;
  std::uint64_t fold_epoch_ = 0;
  std::uint64_t last_applied_ = 0;
  bool folding_ = false;
  bool in_recovery_ = false;
  bool recovered_ = false;
  bool resilver_discard_ok_ = false;
  std::uint64_t checks_ = 0;
};

/// COW payload freeze audit (DESIGN.md §7): once a payload handle enters
/// the checkpoint pipeline its bytes must never change. pin() fingerprints
/// a payload on first sight; verify_all() re-hashes every still-live
/// pinned payload. Holds weak references only, so pinning never perturbs
/// the copy-on-write sharing it audits.
class PayloadFreezeGuard {
 public:
  void pin(const kern::PagePayload& payload);
  void verify_all();
  /// Re-hashes at most `budget` pinned payloads, rotating through the pin
  /// set across calls so repeated budgeted sweeps reach every payload.
  /// Bounds per-sweep cost on working sets whose every page stays live in
  /// the backup store.
  void verify_budget(std::uint64_t budget);

  std::uint64_t live() const { return entries_.size(); }
  std::uint64_t pins() const { return pins_; }
  std::uint64_t verifications() const { return verifications_; }

 private:
  struct Entry {
    std::weak_ptr<const kern::PageBytes> ref;
    std::uint64_t fingerprint = 0;
    bool seen_in_compaction = false;  // scratch for order_ deduplication
  };
  // Keyed by payload identity: one page can have several generations of
  // payloads alive at once (image, store, delta reference). Identity
  // lookups only — every iteration order the guard exposes (verify_all,
  // the verify_budget rotation) walks order_, the pin-order key list, so
  // verification order never depends on allocation addresses.
  // NLC_LINT_OK(ptr-key): identity-lookup map; iteration goes via order_
  using EntryMap = std::unordered_map<const kern::PageBytes*, Entry>;
  void verify_entry(EntryMap::iterator it);
  /// Drops stale/duplicate keys from order_ (entries erased by
  /// verify_entry leave their key behind; allocator address reuse can
  /// re-add one). Keeps first-pin order.
  void compact_order();

  EntryMap entries_;
  /// Keys in first-pin order; superset of entries_' keys between
  /// compactions. The single source of iteration order.
  std::vector<const kern::PageBytes*> order_;
  /// Rotation cursor for verify_budget(): order_ position drained across
  /// budgeted sweeps, refreshed by compact_order() on wrap.
  std::size_t cycle_pos_ = 0;
  std::uint64_t pins_ = 0;
  std::uint64_t verifications_ = 0;
};

/// Primary-delta / backup-fold byte equivalence, store side: after the
/// fold of an epoch, every shipped page record must be retrievable from
/// the committed page store with the same version and byte-identical
/// payload.
class StoreEquivalenceChecker {
 public:
  void check(const criu::PageStore& store, const criu::CheckpointImage& img);
  std::uint64_t checks() const { return checks_; }

 private:
  std::uint64_t checks_ = 0;
};

/// Replay-equivalence audit (DESIGN.md §14, commit_mode = kReplay). Keeps
/// two independent mirrors of the nondeterministic-event chain — the
/// primary's shipped prefix and the backup's accepted prefix — folding
/// every segment entry-by-entry with its own nd_chain_fold, and checks:
///
///   * every shipped segment continues the primary mirror exactly (seq,
///     start index, start fingerprint, refold to the stamped end_fp);
///   * every checkpoint's (nd_entries, nd_fp) stamp lies on the primary
///     chain (immediately, or when the covering segment later ships);
///   * the backup accepts a segment iff it continues the accepted chain,
///     per an independent revalidation;
///   * failover replay covers exactly committed stamp → accepted end and
///     lands on the accepted end fingerprint.
class ReplayEquivalenceChecker {
 public:
  /// The primary shipped `seg` (after its marker went into the plug).
  void log_shipped(const core::LogSegmentMsg& seg);
  /// A checkpoint stamped chain position (nd_entries, nd_fp); may cover
  /// entries the primary has not flushed into a segment yet.
  void checkpoint_stamped(std::uint64_t nd_entries, std::uint64_t nd_fp);
  /// The backup validated `seg` and decided to accept or reject it.
  void log_ingested(const core::LogSegmentMsg& seg, bool accepted);
  /// The backup committed an epoch whose image carries this chain stamp.
  void committed(std::uint64_t nd_entries, std::uint64_t nd_fp);
  /// Failover replay finished with this end fingerprint and entry count.
  void replayed(std::uint64_t final_fp, std::uint64_t entries_replayed);

  std::uint64_t checks() const { return checks_; }

 private:
  // Primary mirror: the chain as far as shipped segments extend it.
  std::uint64_t p_entries_ = 0;
  std::uint64_t p_fp_ = core::kNdChainSeed;
  std::uint64_t next_seq_ = 0;
  /// Checkpoint stamps ahead of the shipped prefix, verified when the
  /// covering segment ships. (entries, fp), non-decreasing in entries.
  std::deque<std::pair<std::uint64_t, std::uint64_t>> pending_stamps_;
  // Backup mirror: the accepted prefix.
  std::uint64_t b_seq_ = 0;
  std::uint64_t b_entries_ = 0;
  std::uint64_t b_fp_ = core::kNdChainSeed;
  // Last committed checkpoint's chain stamp (the replay start point).
  std::uint64_t committed_entries_ = 0;
  std::uint64_t committed_fp_ = core::kNdChainSeed;
  std::uint64_t checks_ = 0;
};

/// N-way quorum output commit (DESIGN.md §16). Mirrors every replica's ack
/// cursor independently and re-derives the quorum cursor (the K-th largest
/// per-replica cursor) at every advance the primary declares; epoch or
/// log-segment output may release only once K replicas cover it. Also
/// audits the failover election: the promoted replica's catch-up key must
/// be maximal among the surviving candidates AND cover the last quorum
/// release — the "zero client-visible output loss" property.
class QuorumCommitChecker {
 public:
  QuorumCommitChecker(int replicas, int quorum_k);

  /// Replica `r` acked `epoch`. Cursors are monotone (FIFO channel,
  /// sequential backup).
  void replica_ack(int r, std::uint64_t epoch);
  /// The primary declared the quorum cursor advanced to `epoch`.
  void quorum_advanced(std::uint64_t epoch);
  /// Replica `r` acked log segment `seq` (replay commit mode).
  void replica_log_ack(int r, std::uint64_t seq);
  /// The primary released segment `seq`'s plugged output.
  void log_release(std::uint64_t seq);

  /// Election-close key of one surviving replica (mirror of
  /// core::PromotionCandidate, kept sim-free here).
  struct Candidate {
    int index = 0;
    bool any_ack = false;
    std::uint64_t acked_epoch = 0;
    std::uint64_t nd_entries = 0;
  };
  /// The arbiter promoted `winner` out of `candidates`.
  void promoted(int winner, const std::vector<Candidate>& candidates);

  int replicas() const { return n_; }
  int quorum() const { return k_; }
  std::uint64_t checks() const { return checks_; }

 private:
  int n_;
  int k_;
  std::vector<std::uint64_t> cursor_;
  std::vector<bool> any_;
  std::uint64_t quorum_cursor_ = 0;
  bool any_quorum_ = false;
  /// Per-segment replica-ack bitmask + release flag; retired once fully
  /// acked and released (a dead replica leaves a bounded remainder, like
  /// the agent's own seg_recs_).
  struct Seg {
    std::uint32_t acks = 0;
    bool released = false;
  };
  std::unordered_map<std::uint64_t, Seg> segs_;
  std::uint64_t checks_ = 0;
};

/// Primary-delta byte equivalence, wire side: shadow-replays the delta
/// codec over each shipped image with an independently tracked reference
/// set, checking that the stamped per-page wire sizes match a fresh encode
/// and that decode reconstructs the shipped bytes exactly.
class DeltaReplayChecker {
 public:
  void replay(const criu::CheckpointImage& img, bool delta_enabled);
  std::uint64_t checks() const { return checks_; }

 private:
  std::unordered_map<kern::PageNum, kern::PagePayload> prev_;
  std::uint64_t checks_ = 0;
};

}  // namespace nlc::check
