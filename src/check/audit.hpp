// InvariantAuditor: the runtime audit layer over a protected Cluster.
//
// One auditor observes one protected container end to end. It implements
// every observer seam the replication core exposes — the egress plug, the
// agent pair's commit points, the backup DRBD buffer — and routes the
// event stream into the checkers in invariants.hpp:
//
//   * output commit: no sch_plug release before the backup's ack, checked
//     per packet against an independent mirror of the plug buffer;
//   * epoch monotonicity and exactly-once commit on the backup, including
//     DRBD's buffered-write ordering inside the fold window;
//   * COW payload freeze: page payloads captured by a checkpoint never
//     change bytes while any pipeline stage still references them;
//   * page-store/image equivalence after every fold, and restored-memory/
//     store equivalence after failover;
//   * delta-codec shadow replay (wire-size stamps + byte-exact decode).
//
// Cost is governed by Options::audit_level: kCommitPoints checks ordering
// and equivalence at every epoch commit and at failover; kContinuous adds
// COW re-fingerprinting (budgeted, via a periodic simulation probe) and
// the per-epoch delta replay. The auditor holds no strong references to
// page payloads and never mutates observed components, so an audited run
// takes the exact same protocol decisions as an unaudited one.
//
// A violated invariant throws nlc::InvariantError, which escapes
// Simulation::run() — an audited experiment either finishes clean or dies
// loudly at the first broken property.
#pragma once

#include "blockdev/drbd.hpp"
#include "check/invariants.hpp"
#include "core/audit_hooks.hpp"
#include "core/cluster.hpp"
#include "net/qdisc.hpp"

namespace nlc::check {

/// Byte-equivalence walk of a restored container against a committed page
/// store (shared by the auditor and the per-replica adapters, so a
/// promoted extra replica gets the same post-failover audit as replica 0).
/// Returns the number of pages compared.
std::uint64_t restore_equivalence_walk(const criu::PageStore& store,
                                       const kern::Kernel& kernel,
                                       kern::ContainerId cid);

/// Per-replica audit adapter for extra backup replicas (N > 1, DESIGN.md
/// §16). Each extra replica runs the same backup-side epoch lifecycle as
/// replica 0 but against its own DRBD buffer and page store, so each gets
/// its own checker mirrors — routing all replicas into one mirror would
/// interleave their (independent) epoch streams.
class ReplicaAudit final : public core::BackupAuditHooks,
                           public blk::DrbdObserver {
 public:
  ReplicaAudit(core::Cluster& cluster, int index, kern::ContainerId cid)
      : cluster_(&cluster), index_(index), cid_(cid) {}

  // core::BackupAuditHooks
  void on_ack_sent(std::uint64_t epoch, std::uint64_t last_barrier) override;
  void on_commit_begin(std::uint64_t epoch) override;
  void on_commit(const core::EpochStateMsg& msg) override;
  void on_recovery_started(std::uint64_t committed_epoch) override;
  void on_recovered(std::uint64_t committed_epoch) override;
  void on_resilver_adopted(std::uint64_t committed_epoch) override;

  // blk::DrbdObserver
  void on_drbd_epoch_applied(std::uint64_t epoch,
                             std::uint64_t writes) override;
  void on_drbd_discard(std::uint64_t writes) override;

  std::uint64_t epoch_checks() const { return epoch_.checks(); }
  std::uint64_t store_checks() const { return store_.checks(); }
  std::uint64_t restore_checks() const { return restore_equiv_checks_; }

 private:
  core::Cluster* cluster_;
  int index_;
  kern::ContainerId cid_;
  EpochCommitChecker epoch_;
  StoreEquivalenceChecker store_;
  std::uint64_t restore_equiv_checks_ = 0;
};

class InvariantAuditor final : public net::PlugObserver,
                               public core::PrimaryAuditHooks,
                               public core::BackupAuditHooks,
                               public blk::DrbdObserver {
 public:
  /// Both agents of `cluster` must exist (construct from the
  /// Cluster::on_agents_created callback). `opts` must be the Options the
  /// container is protected with.
  InvariantAuditor(core::Cluster& cluster, kern::ContainerId cid,
                   const core::Options& opts);
  ~InvariantAuditor() override;

  InvariantAuditor(const InvariantAuditor&) = delete;
  InvariantAuditor& operator=(const InvariantAuditor&) = delete;

  /// Installs the observers on every seam (idempotent).
  void attach();
  /// Uninstalls them; safe to call while the simulation still runs.
  void detach();

  /// End-of-run audit: full re-fingerprint of every live pinned payload
  /// plus the cross-component mirror checks. Call after Simulation::run()
  /// returns.
  void final_audit();

  AuditStats stats() const;
  core::AuditLevel level() const { return level_; }

  // net::PlugObserver
  void on_plug_enqueue(const net::Packet& p) override;
  void on_plug_marker(std::uint64_t marker) override;
  void on_plug_release(std::uint64_t marker, std::uint64_t packets) override;
  void on_plug_discard(std::uint64_t packets) override;

  // core::PrimaryAuditHooks
  void on_state_ready(const core::EpochStateMsg& msg, bool initial) override;
  void on_marker_inserted(std::uint64_t epoch, std::uint64_t marker) override;
  void on_ack_received(std::uint64_t epoch) override;
  void on_release(std::uint64_t epoch) override;
  void on_log_shipped(const core::LogSegmentMsg& seg,
                      std::uint64_t marker) override;
  void on_log_ack_received(std::uint64_t seq) override;
  void on_log_release(std::uint64_t seq) override;

  // core::BackupAuditHooks
  void on_ack_sent(std::uint64_t epoch, std::uint64_t last_barrier) override;
  void on_commit_begin(std::uint64_t epoch) override;
  void on_commit(const core::EpochStateMsg& msg) override;
  void on_recovery_started(std::uint64_t committed_epoch) override;
  void on_recovered(std::uint64_t committed_epoch) override;
  void on_resilver_adopted(std::uint64_t committed_epoch) override;
  void on_log_ingested(const core::LogSegmentMsg& seg, bool accepted) override;
  void on_replayed(std::uint64_t final_fp,
                   std::uint64_t entries_replayed) override;
  void on_replica_ack(int replica, std::uint64_t epoch) override;
  void on_replica_log_ack(int replica, std::uint64_t seq) override;

  // blk::DrbdObserver
  void on_drbd_epoch_applied(std::uint64_t epoch,
                             std::uint64_t writes) override;
  void on_drbd_discard(std::uint64_t writes) override;

 private:
  /// Periodic probe body (kContinuous): budgeted payload re-fingerprint
  /// plus the plug-mirror cross-check.
  void sweep();
  void pin_image_payloads(const criu::CheckpointImage& img);

  /// Payloads re-hashed per budgeted verification call. Bounds the audit's
  /// per-commit/per-probe cost on working sets that keep every page of the
  /// container alive in the page store.
  static constexpr std::uint64_t kVerifyBudget = 256;
  /// Continuous-level probe period, in simulation events.
  static constexpr std::uint64_t kProbeEveryEvents = 512;

  core::Cluster* cluster_;
  kern::ContainerId cid_;
  core::AuditLevel level_;
  bool delta_enabled_;
  /// Replay commit mode: output commits per log segment, so occ_ runs on
  /// segment seq numbers and epoch acks must stay out of it (the two
  /// number spaces would interleave).
  bool replay_mode_;
  net::PlugQdisc* plug_;
  bool attached_ = false;

  OutputCommitChecker occ_;
  EpochCommitChecker epoch_;
  PayloadFreezeGuard freeze_;
  StoreEquivalenceChecker store_;
  DeltaReplayChecker delta_;
  ReplayEquivalenceChecker replay_;
  QuorumCommitChecker quorum_;
  /// One adapter per extra backup replica (index i + 1 at position i).
  std::vector<std::unique_ptr<ReplicaAudit>> replica_audits_;

  /// Marker id the plug reported last, cross-checked against the agent's
  /// marker hook.
  std::uint64_t last_plug_marker_ = 0;
  bool saw_plug_marker_ = false;
  /// Epoch the primary declared it is releasing, consumed by the plug's
  /// release notification.
  std::uint64_t pending_release_epoch_ = OutputCommitChecker::kAnyEpoch;

  std::uint64_t sweeps_ = 0;
  std::uint64_t restore_equiv_checks_ = 0;
};

}  // namespace nlc::check
