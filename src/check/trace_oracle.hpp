// Trace-stream ordering oracle (DESIGN.md §11).
//
// The live checkers in invariants.hpp audit the protocol as it runs, from
// observer hooks. This oracle re-derives the same two commit orderings
// *post hoc* from a drained flight-recorder stream:
//
//   * output commit — an epoch's buffered output may be released only
//     after the primary saw that epoch's ack (release-before-ack is the
//     §IV violation NiLiCon exists to prevent);
//   * epoch commit — the backup may begin committing an epoch only after
//     that epoch's DRBD barrier arrived (commit-before-barrier would let a
//     failover restore memory state ahead of the disk);
//   * log-segment release (replay commit mode, DESIGN.md §14) — a
//     segment's buffered output may be released only after that segment's
//     log ack reached the primary (the HyCoR-style output-commit rule that
//     replaces the per-epoch one; epoch runs emit no log instants, replay
//     runs emit no epoch releases, so the rules never cross-fire);
//   * quorum release (N > 1, DESIGN.md §16) — with `quorum_k` replica
//     acks required per epoch, a release may fire only after at least K
//     kReplicaAck instants for that epoch (each replica acks each epoch
//     exactly once, so the per-epoch instant count is the replica count);
//   * promotion-before-resilver — a re-silver span can open only after
//     the arbiter recorded its kPromote instant (a survivor must never be
//     overwritten with full state before a winner has been elected).
//
// Event order comes from Recorder seq numbers, which are consistent with
// each recording thread's program order — so a trace emitted by a correct
// run always passes, and a reordered (or hand-forged, in the negative
// tests) stream raises the same InvariantError the live mirrors would.
#pragma once

#include <vector>

#include "trace/events.hpp"

namespace nlc::check {

struct TraceOrderStats {
  std::uint64_t release_checks = 0;  // release-after-ack orderings verified
  std::uint64_t commit_checks = 0;   // commit-after-barrier orderings verified
  /// Replay mode: segment-release-after-log-ack orderings verified.
  std::uint64_t log_release_checks = 0;
  /// N > 1: release-after-K-replica-acks orderings verified.
  std::uint64_t quorum_release_checks = 0;
  /// N > 1: resilver-after-promotion orderings verified.
  std::uint64_t promotion_checks = 0;

  std::uint64_t total() const {
    return release_checks + commit_checks + log_release_checks +
           quorum_release_checks + promotion_checks;
  }
};

/// Replays `events` (as drained from a trace::Recorder: sorted by seq) and
/// throws nlc::InvariantError on a release-before-ack or
/// commit-before-barrier ordering. Returns the per-ordering check counts.
/// `quorum_k` is the run's resolved quorum size: when > 1 every epoch
/// release is additionally checked against the per-epoch kReplicaAck
/// count (two-node traces carry no kReplicaAck instants, so the default
/// leaves the legacy rules byte-identical).
TraceOrderStats audit_trace_ordering(const std::vector<trace::Event>& events,
                                     int quorum_k = 1);

}  // namespace nlc::check
