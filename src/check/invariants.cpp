#include "check/invariants.hpp"

#include <algorithm>
#include <bit>
#include <functional>
#include <tuple>

namespace nlc::check {

std::uint64_t fnv1a_page(const kern::PageBytes& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ull;
  }
  return h;
}

// ---------------------------------------------------------------------------
// OutputCommitChecker

void OutputCommitChecker::marker_inserted(std::uint64_t epoch,
                                          std::uint64_t marker) {
  if (!segments_.empty()) {
    NLC_CHECK_MSG(marker > segments_.back().marker,
                  "audit: plug markers must be strictly increasing");
    NLC_CHECK_MSG(epoch > segments_.back().epoch,
                  "audit: marker epochs must be strictly increasing");
  }
  segments_.push_back(Segment{epoch, marker, open_packets_});
  open_packets_ = 0;
}

void OutputCommitChecker::ack_received(std::uint64_t epoch) {
  NLC_CHECK_MSG(!has_ack_ || epoch > acked_,
                "audit: primary received acks out of order");
  acked_ = epoch;
  has_ack_ = true;
}

void OutputCommitChecker::released(std::uint64_t marker, std::uint64_t packets,
                                   std::uint64_t expected_epoch) {
  // The plug releases in FIFO order up to `marker`; every segment at or
  // before it carries output of an epoch the backup must already have
  // acknowledged — the output-commit property, checked per packet batch.
  std::uint64_t covered = 0;
  bool matched = false;
  while (!segments_.empty() && segments_.front().marker <= marker) {
    const Segment& seg = segments_.front();
    NLC_CHECK_MSG(has_ack_ && seg.epoch <= acked_,
                  "audit: output released before the backup acknowledged its "
                  "epoch (output commit violated)");
    if (seg.marker == marker) {
      matched = true;
      NLC_CHECK_MSG(
          expected_epoch == kAnyEpoch || seg.epoch == expected_epoch,
          "audit: released marker does not belong to the committing epoch");
    }
    covered += seg.packets;
    segments_.pop_front();
    ++checks_;
  }
  NLC_CHECK_MSG(matched, "audit: plug released a marker the mirror never saw");
  NLC_CHECK_MSG(covered == packets,
                "audit: plug released a different packet count than the "
                "mirror buffered for those epochs");
}

void OutputCommitChecker::discarded(std::uint64_t packets) {
  // Failover: dropping uncommitted output is always legal, but the count
  // must match the mirror or packets leaked out of (or into) the buffer.
  NLC_CHECK_MSG(packets == mirrored_packets(),
                "audit: plug discard count diverged from the mirror");
  segments_.clear();
  open_packets_ = 0;
  ++checks_;
}

std::uint64_t OutputCommitChecker::mirrored_packets() const {
  std::uint64_t n = open_packets_;
  for (const Segment& seg : segments_) n += seg.packets;
  return n;
}

// ---------------------------------------------------------------------------
// EpochCommitChecker

void EpochCommitChecker::ack_sent(std::uint64_t epoch,
                                  std::uint64_t last_barrier) {
  NLC_CHECK_MSG(epoch == next_ack_,
                "audit: backup acks must be sequential, exactly once");
  NLC_CHECK_MSG(last_barrier >= epoch,
                "audit: ack sent before the epoch's DRBD barrier arrived");
  ++next_ack_;
  ++checks_;
}

void EpochCommitChecker::commit_begin(std::uint64_t epoch) {
  NLC_CHECK_MSG(!folding_, "audit: overlapping backup state commits");
  NLC_CHECK_MSG(epoch == next_commit_,
                "audit: backup commits must be sequential, exactly once");
  NLC_CHECK_MSG(epoch < next_ack_,
                "audit: commit of an epoch that was never acknowledged");
  folding_ = true;
  fold_epoch_ = epoch;
  ++checks_;
}

void EpochCommitChecker::committed(std::uint64_t epoch) {
  NLC_CHECK_MSG(folding_ && epoch == fold_epoch_,
                "audit: commit completion does not match the open fold");
  folding_ = false;
  ++next_commit_;
  ++checks_;
}

void EpochCommitChecker::drbd_applied(std::uint64_t epoch) {
  // Buffered disk writes reach the backup disk only inside the fold of a
  // state-committed epoch and never ahead of it (§IV: disk and memory
  // state commit atomically per epoch).
  NLC_CHECK_MSG(folding_,
                "audit: DRBD epoch applied outside a state commit fold");
  NLC_CHECK_MSG(epoch <= fold_epoch_,
                "audit: DRBD applied disk writes of a future epoch");
  NLC_CHECK_MSG(epoch >= last_applied_,
                "audit: DRBD applied epochs out of order");
  last_applied_ = epoch;
  ++checks_;
}

void EpochCommitChecker::drbd_discarded() {
  NLC_CHECK_MSG(in_recovery_ || resilver_discard_ok_,
                "audit: uncommitted DRBD writes discarded outside failover");
  resilver_discard_ok_ = false;
  ++checks_;
}

void EpochCommitChecker::resilver_adopted(std::uint64_t committed_epoch) {
  // A survivor adopts only outside its own recovery and outside a fold
  // (the arbiter re-silvers after the winner's restore completes, and a
  // dead primary cannot have a fold in flight on a live survivor).
  NLC_CHECK_MSG(!in_recovery_, "audit: resilver adoption during recovery");
  NLC_CHECK_MSG(!folding_, "audit: resilver adoption inside an open fold");
  // The election picked the maximal cursor, so adoption never rewinds a
  // survivor behind its own committed prefix.
  NLC_CHECK_MSG(next_commit_ == 0 || committed_epoch + 1 >= next_commit_,
                "audit: resilver moved a survivor backwards");
  next_commit_ = committed_epoch + 1;
  if (next_ack_ < next_commit_) next_ack_ = next_commit_;
  if (last_applied_ < committed_epoch) last_applied_ = committed_epoch;
  resilver_discard_ok_ = true;
  ++checks_;
}

void EpochCommitChecker::recovery_started(std::uint64_t committed_epoch) {
  NLC_CHECK_MSG(!in_recovery_ && !recovered_,
                "audit: recovery started twice");
  // A fold may still be in flight (recover() waits for it); the restore
  // point must cover at least every fully committed epoch so far.
  NLC_CHECK_MSG(next_commit_ == 0 || committed_epoch + 1 >= next_commit_,
                "audit: recovery forgot already-committed epochs");
  in_recovery_ = true;
  ++checks_;
}

void EpochCommitChecker::recovered(std::uint64_t committed_epoch) {
  NLC_CHECK_MSG(in_recovery_, "audit: recovered without recovery_started");
  NLC_CHECK_MSG(!folding_, "audit: recovery finished with an open fold");
  NLC_CHECK_MSG(next_commit_ > 0 && committed_epoch == next_commit_ - 1,
                "audit: restore point is not the newest committed epoch "
                "(exactly-once commit violated)");
  in_recovery_ = false;
  recovered_ = true;
  ++checks_;
}

// ---------------------------------------------------------------------------
// PayloadFreezeGuard

void PayloadFreezeGuard::pin(const kern::PagePayload& payload) {
  if (!payload) return;
  const kern::PageBytes* key = payload.get();
  auto [it, inserted] = entries_.try_emplace(key);
  if (inserted) {
    // May momentarily duplicate a stale key left behind by verify_entry's
    // erase (allocator address reuse); compact_order() dedupes.
    order_.push_back(key);
  } else if (!it->second.ref.expired()) {
    return;  // already pinned
  }
  // First sight — or the allocator reused the address of a retired payload.
  it->second.ref = payload;
  it->second.fingerprint = fnv1a_page(*payload);
  ++pins_;
}

void PayloadFreezeGuard::verify_entry(EntryMap::iterator it) {
  std::shared_ptr<const kern::PageBytes> live = it->second.ref.lock();
  if (!live) {
    // Every pipeline stage dropped its handle; the payload may be gone.
    entries_.erase(it);
    return;
  }
  NLC_CHECK_MSG(fnv1a_page(*live) == it->second.fingerprint,
                "audit: frozen COW page payload mutated while the "
                "checkpoint pipeline still references it");
  ++verifications_;
}

void PayloadFreezeGuard::compact_order() {
  std::vector<const kern::PageBytes*> live;
  live.reserve(entries_.size());
  for (const kern::PageBytes* key : order_) {
    auto it = entries_.find(key);
    if (it == entries_.end() || it->second.seen_in_compaction) continue;
    it->second.seen_in_compaction = true;
    live.push_back(key);
  }
  for (const kern::PageBytes* key : live) {
    entries_.find(key)->second.seen_in_compaction = false;
  }
  order_ = std::move(live);
}

void PayloadFreezeGuard::verify_all() {
  // Walk the pin-order list, never the hash map: with pointer keys, map
  // order follows allocation addresses and would make the point at which a
  // corruption check fires (and which of several corruptions reports
  // first) differ run to run.
  compact_order();  // first: dedupe, so each live entry verifies once
  for (const kern::PageBytes* key : order_) {
    auto it = entries_.find(key);
    if (it != entries_.end()) verify_entry(it);
  }
  cycle_pos_ = 0;
}

void PayloadFreezeGuard::verify_budget(std::uint64_t budget) {
  for (std::uint64_t done = 0; done < budget; ++done) {
    if (cycle_pos_ >= order_.size()) {
      compact_order();
      cycle_pos_ = 0;
      if (order_.empty()) return;
    }
    auto it = entries_.find(order_[cycle_pos_++]);
    if (it != entries_.end()) verify_entry(it);
  }
}

// ---------------------------------------------------------------------------
// ReplayEquivalenceChecker

void ReplayEquivalenceChecker::log_shipped(const core::LogSegmentMsg& seg) {
  NLC_CHECK_MSG(seg.seq == next_seq_,
                "audit: shipped log segment out of sequence");
  NLC_CHECK_MSG(seg.start_index == p_entries_ && seg.start_fp == p_fp_,
                "audit: log segment does not continue the primary's "
                "shipped event chain");
  for (const core::NdEvent& e : seg.entries) {
    p_fp_ = core::nd_chain_fold(p_fp_, e);
    ++p_entries_;
    // Checkpoint stamps taken while these entries were still pending in
    // the primary's log become verifiable as the chain reaches them.
    while (!pending_stamps_.empty() &&
           pending_stamps_.front().first == p_entries_) {
      NLC_CHECK_MSG(pending_stamps_.front().second == p_fp_,
                    "audit: checkpoint nondet stamp is off the shipped "
                    "event chain");
      pending_stamps_.pop_front();
      ++checks_;
    }
  }
  NLC_CHECK_MSG(p_fp_ == seg.end_fp,
                "audit: log segment end fingerprint does not match an "
                "independent refold of its entries");
  ++next_seq_;
  ++checks_;
}

void ReplayEquivalenceChecker::checkpoint_stamped(std::uint64_t nd_entries,
                                                  std::uint64_t nd_fp) {
  if (nd_entries <= p_entries_) {
    // The stamp's position is already covered by shipped segments, so the
    // fingerprints must agree right now; a position strictly behind the
    // shipped prefix means the agent stamped a stale chain state.
    NLC_CHECK_MSG(nd_entries == p_entries_ && nd_fp == p_fp_,
                  "audit: checkpoint nondet stamp is off the shipped "
                  "event chain");
    ++checks_;
    return;
  }
  if (!pending_stamps_.empty()) {
    NLC_CHECK_MSG(nd_entries >= pending_stamps_.back().first,
                  "audit: checkpoint nondet stamps went backwards");
  }
  pending_stamps_.emplace_back(nd_entries, nd_fp);
}

void ReplayEquivalenceChecker::log_ingested(const core::LogSegmentMsg& seg,
                                            bool accepted) {
  std::uint64_t fp = seg.start_fp;
  for (const core::NdEvent& e : seg.entries) fp = core::nd_chain_fold(fp, e);
  const bool chain_ok = seg.seq == b_seq_ && seg.start_index == b_entries_ &&
                        seg.start_fp == b_fp_ && fp == seg.end_fp;
  NLC_CHECK_MSG(accepted == chain_ok,
                "audit: backup's segment accept decision disagrees with an "
                "independent chain validation");
  if (accepted) {
    b_seq_ = seg.seq + 1;
    b_entries_ = seg.start_index + seg.entries.size();
    b_fp_ = seg.end_fp;
  }
  ++checks_;
}

void ReplayEquivalenceChecker::committed(std::uint64_t nd_entries,
                                         std::uint64_t nd_fp) {
  NLC_CHECK_MSG(nd_entries >= committed_entries_,
                "audit: committed nondet chain stamp went backwards");
  committed_entries_ = nd_entries;
  committed_fp_ = nd_fp;
  ++checks_;
}

void ReplayEquivalenceChecker::replayed(std::uint64_t final_fp,
                                        std::uint64_t entries_replayed) {
  // Replay runs from the committed checkpoint's stamp to the accepted end
  // of the backup's chain. When the committed stamp already covers (or
  // overtakes — entries recorded but never flushed before the crash) the
  // accepted prefix, replay must be empty and end on the stamp itself.
  const bool beyond = b_entries_ > committed_entries_;
  const std::uint64_t expect_entries =
      beyond ? b_entries_ - committed_entries_ : 0;
  NLC_CHECK_MSG(entries_replayed == expect_entries,
                "audit: failover replay covered the wrong entry span");
  const std::uint64_t expect_fp = beyond ? b_fp_ : committed_fp_;
  NLC_CHECK_MSG(final_fp == expect_fp,
                "audit: failover replay ended off the accepted event chain");
  ++checks_;
}

// ---------------------------------------------------------------------------
// StoreEquivalenceChecker

void StoreEquivalenceChecker::check(const criu::PageStore& store,
                                    const criu::CheckpointImage& img) {
  for (const criu::PageRecord& rec : img.pages) {
    const criu::PageRecord* got = store.lookup(rec.page);
    NLC_CHECK_MSG(got != nullptr,
                  "audit: folded page missing from the page store");
    NLC_CHECK_MSG(got->version == rec.version,
                  "audit: page store holds the wrong version after fold");
    if (rec.has_content()) {
      NLC_CHECK_MSG(got->content != nullptr,
                    "audit: content page stored without its payload");
      // Zero-copy fold stores the shared handle itself; a differing handle
      // is legal only if the bytes still match exactly.
      if (got->content != rec.content) {
        NLC_CHECK_MSG(*got->content == *rec.content,
                      "audit: page store bytes diverged from the shipped "
                      "image (delta/fold equivalence violated)");
      }
    } else {
      NLC_CHECK_MSG(got->content == nullptr,
                    "audit: accounting page grew a payload in the store");
    }
    ++checks_;
  }
}

// ---------------------------------------------------------------------------
// QuorumCommitChecker

QuorumCommitChecker::QuorumCommitChecker(int replicas, int quorum_k)
    : n_(replicas), k_(quorum_k) {
  NLC_CHECK_MSG(replicas >= 1 && replicas <= 32,
                "audit: replica count out of range");
  NLC_CHECK_MSG(quorum_k >= 1 && quorum_k <= replicas,
                "audit: quorum K out of range");
  cursor_.assign(static_cast<std::size_t>(replicas), 0);
  any_.assign(static_cast<std::size_t>(replicas), false);
}

void QuorumCommitChecker::replica_ack(int r, std::uint64_t epoch) {
  NLC_CHECK_MSG(r >= 0 && r < n_, "audit: ack from unknown replica");
  const auto i = static_cast<std::size_t>(r);
  NLC_CHECK_MSG(!any_[i] || epoch >= cursor_[i],
                "audit: per-replica ack cursor went backwards");
  cursor_[i] = epoch;
  any_[i] = true;
  ++checks_;
}

void QuorumCommitChecker::quorum_advanced(std::uint64_t epoch) {
  // Independent re-derivation: the quorum cursor is the K-th largest
  // per-replica cursor, defined only once K replicas have acked at all.
  std::vector<std::uint64_t> acked;
  for (int r = 0; r < n_; ++r) {
    if (any_[static_cast<std::size_t>(r)]) {
      acked.push_back(cursor_[static_cast<std::size_t>(r)]);
    }
  }
  NLC_CHECK_MSG(static_cast<int>(acked.size()) >= k_,
                "audit: quorum declared before K replicas acked");
  std::sort(acked.begin(), acked.end(), std::greater<>());
  NLC_CHECK_MSG(acked[static_cast<std::size_t>(k_ - 1)] == epoch,
                "audit: declared quorum cursor is not the K-th largest "
                "replica cursor");
  NLC_CHECK_MSG(!any_quorum_ || epoch >= quorum_cursor_,
                "audit: quorum cursor went backwards");
  quorum_cursor_ = epoch;
  any_quorum_ = true;
  ++checks_;
}

void QuorumCommitChecker::replica_log_ack(int r, std::uint64_t seq) {
  NLC_CHECK_MSG(r >= 0 && r < n_, "audit: log ack from unknown replica");
  Seg& s = segs_[seq];
  const std::uint32_t bit = 1u << static_cast<unsigned>(r);
  NLC_CHECK_MSG((s.acks & bit) == 0,
                "audit: duplicate log ack from one replica");
  s.acks |= bit;
  ++checks_;
  if (s.released && std::popcount(s.acks) == n_) segs_.erase(seq);
}

void QuorumCommitChecker::log_release(std::uint64_t seq) {
  auto it = segs_.find(seq);
  NLC_CHECK_MSG(it != segs_.end(),
                "audit: release of a segment no replica acked");
  NLC_CHECK_MSG(!it->second.released,
                "audit: segment output released twice");
  NLC_CHECK_MSG(std::popcount(it->second.acks) >= k_,
                "audit: segment output released before K replica acks");
  it->second.released = true;
  ++checks_;
  if (std::popcount(it->second.acks) == n_) segs_.erase(it);
}

void QuorumCommitChecker::promoted(int winner,
                                   const std::vector<Candidate>& candidates) {
  const Candidate* w = nullptr;
  for (const Candidate& c : candidates) {
    if (c.index == winner) w = &c;
  }
  NLC_CHECK_MSG(w != nullptr, "audit: promoted a non-candidate replica");
  for (const Candidate& c : candidates) {
    NLC_CHECK_MSG(
        std::tuple(w->any_ack, w->acked_epoch, w->nd_entries) >=
            std::tuple(c.any_ack, c.acked_epoch, c.nd_entries),
        "audit: promotion must pick a most-caught-up replica");
    // A replica's own cursor can only be AHEAD of what the (now dead)
    // primary saw: acks in flight at the crash were sent but not observed.
    if (c.index >= 0 && c.index < n_ &&
        any_[static_cast<std::size_t>(c.index)]) {
      NLC_CHECK_MSG(
          c.acked_epoch >= cursor_[static_cast<std::size_t>(c.index)],
          "audit: candidate cursor behind the primary-side mirror");
    }
  }
  // Zero client-visible output loss: every epoch whose output a quorum
  // released is covered by the winner's cursor.
  if (any_quorum_) {
    NLC_CHECK_MSG(w->any_ack && w->acked_epoch >= quorum_cursor_,
                  "audit: promoted replica misses quorum-released output");
  }
  ++checks_;
}

// ---------------------------------------------------------------------------
// DeltaReplayChecker

void DeltaReplayChecker::replay(const criu::CheckpointImage& img,
                                bool delta_enabled) {
  for (const criu::PageRecord& rec : img.pages) {
    if (!rec.has_content()) {
      NLC_CHECK_MSG(rec.wire_size == nlc::kPageSize,
                    "audit: accounting page with a compressed wire size");
      continue;
    }
    if (!delta_enabled) {
      NLC_CHECK_MSG(rec.wire_size == nlc::kPageSize,
                    "audit: compressed wire size with the delta stage off");
      continue;
    }
    auto it = prev_.find(rec.page);
    const kern::PageBytes* ref = it == prev_.end() ? nullptr : it->second.get();
    criu::PageDelta d = criu::delta_encode(ref, *rec.content);
    NLC_CHECK_MSG(d.wire_size == rec.wire_size,
                  "audit: stamped wire size disagrees with a shadow encode");
    kern::PageBytes rebuilt = criu::delta_apply(ref, d, rec.content.get());
    NLC_CHECK_MSG(rebuilt == *rec.content,
                  "audit: delta codec failed the byte-exact round trip");
    prev_[rec.page] = rec.content;
    ++checks_;
  }
}

}  // namespace nlc::check
