#include "mc/micro_checkpoint.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace nlc::mc {

McDriver::McDriver(McOptions opts, kern::Kernel& kernel, net::TcpStack& tcp,
                   kern::ContainerId cid, core::StateChannel& state_out,
                   core::AckChannel& ack_in,
                   core::ReplicationMetrics& metrics)
    : opts_(opts), kernel_(&kernel), tcp_(&tcp), cid_(cid),
      state_out_(&state_out), ack_in_(&ack_in), metrics_(&metrics),
      pacer_(core::epochctl::EpochController::fixed(opts.epoch_length)),
      rng_(opts.seed ^ 0x4D43ull),
      ack_event_(std::make_unique<sim::Event>(kernel.simulation())) {}

net::IpAddr McDriver::service_ip() const {
  return static_cast<net::IpAddr>(kernel_->container(cid_)->service_ip());
}

sim::task<> McDriver::start() {
  sim::Simulation& sim = kernel_->simulation();
  // The guest kernel's own memory activity: a pseudo-process inside the
  // "VM" whose pages the hypervisor sees dirtied every epoch.
  guest_noise_pages_mapped_ = std::max<std::uint64_t>(
      opts_.guest_noise_pages * 4, 256);
  kern::Process& gk = kernel_->create_process(cid_, "guest-kernel");
  guest_kernel_pid_ = gk.pid();
  kern::Vma noise =
      gk.mm().map(guest_noise_pages_mapped_, kern::VmaKind::kAnon,
                  "[guest-kernel]");
  guest_noise_start_ = noise.start;

  tcp_->plug(service_ip()).engage();
  co_await checkpoint_once(/*initial=*/true);
  sim.spawn(kernel_->domain(), ack_loop());
  sim.spawn(kernel_->domain(), epoch_loop());
}

sim::task<> McDriver::epoch_loop() {
  sim::Simulation& sim = kernel_->simulation();
  while (running_) {
    co_await sim.sleep_for(pacer_.epoch_length());
    if (!running_) break;
    NLC_CHECK(epoch_ >= 1);
    if (epoch_ >= 2) co_await wait_acked(epoch_ - 2);
    co_await checkpoint_once(false);
  }
}

sim::task<> McDriver::wait_acked(std::uint64_t epoch) {
  while (acked_epoch_ < epoch) {
    ack_event_->reset();
    co_await ack_event_->wait();
  }
}

sim::task<> McDriver::checkpoint_once(bool initial) {
  sim::Simulation& sim = kernel_->simulation();
  std::uint64_t epoch = epoch_;
  Time stop_begin = sim.now();

  // Guest kernel activity since the last epoch (network stack buffers,
  // timers, page cache) — dirtied just before the pause observes it.
  if (opts_.guest_noise_pages > 0) {
    kern::Process* gk = kernel_->process(guest_kernel_pid_);
    std::uint64_t base = static_cast<std::uint64_t>(rng_.uniform(
        0, static_cast<std::int64_t>(guest_noise_pages_mapped_ -
                                     opts_.guest_noise_pages)));
    gk->mm().touch_range(guest_noise_start_ + base, opts_.guest_noise_pages);
  }

  // Pause the VM; incoming packets queue in the host tap ring.
  kernel_->freeze_container(cid_);
  tcp_->ingress(service_ip()).set_mode(net::IngressFilter::Mode::kBuffer);

  // The hypervisor reads guest memory directly: collect the dirty set.
  std::uint64_t dirty = 0;
  for (kern::Process* p : kernel_->container_processes(cid_)) {
    if (initial) {
      dirty += p->mm().mapped_pages();
    } else {
      dirty += p->mm().dirty_pages().size();
    }
    p->mm().clear_soft_dirty();
  }
  Time stop_cost = costs_.stop_base +
                   static_cast<Time>(dirty) * costs_.copy_per_page;
  co_await sim.sleep_for(stop_cost);

  // Resume; ship asynchronously (MC buffers and transmits post-resume).
  tcp_->ingress(service_ip()).set_mode(net::IngressFilter::Mode::kPass);
  std::uint64_t marker = tcp_->plug(service_ip()).insert_marker();
  pending_markers_[epoch] = {marker, stop_begin};
  kernel_->thaw_container(cid_);

  Time stop = sim.now() - stop_begin;
  std::uint64_t bytes = dirty * nlc::kPageSize + costs_.device_state_bytes;
  if (!initial) {
    metrics_->stop_time_ms.add(to_millis(stop));
    metrics_->state_bytes.add(static_cast<double>(bytes));
    metrics_->dirty_pages.add(static_cast<double>(dirty));
    metrics_->epoch_len_ms.add(to_millis(pacer_.epoch_length()));
    ++metrics_->epochs_completed;
    metrics_->bytes_shipped += bytes;
  }

  core::EpochStateMsg msg;
  msg.epoch = epoch;
  msg.wire_bytes = bytes;
  msg.image.epoch = epoch;
  msg.image.container = cid_;
  // MC ships raw pages; reuse the image's page vector for the count only
  // (contents live in guest memory, not needed by the MC backup model).
  msg.image.pages.resize(dirty);
  state_out_->send(std::move(msg), bytes);
  ++epoch_;
}

sim::task<> McDriver::ack_loop() {
  while (true) {
    core::AckMsg ack = co_await ack_in_->recv();
    acked_epoch_ = std::max(acked_epoch_, ack.epoch);
    ack_event_->set();
    auto it = pending_markers_.find(ack.epoch);
    if (it != pending_markers_.end()) {
      tcp_->plug(service_ip()).release_to_marker(it->second.first);
      metrics_->commit_latency_ms.add(
          to_millis(kernel_->simulation().now() - it->second.second));
      pending_markers_.erase(it);
    }
  }
}

sim::task<> McDriver::backup_responder() {
  while (true) {
    core::EpochStateMsg msg = co_await state_out_->recv();
    sim::Simulation& sim = kernel_->simulation();
    Time cost = costs_.backup_base +
                static_cast<Time>(msg.image.pages.size()) *
                    costs_.backup_per_page;
    co_await sim.sleep_for(cost);
    metrics_->backup_busy += cost;
    ack_in_->send(core::AckMsg{msg.epoch}, 64);
  }
}

}  // namespace nlc::mc
