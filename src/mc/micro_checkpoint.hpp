// MC: QEMU/KVM Micro-Checkpointing — the Remus-on-KVM baseline the paper
// compares against (§VI, Figure 3, Table III).
//
// MC protects a whole VM: the hypervisor write-protects guest memory each
// epoch and tracks dirty pages through EPT faults, so there is no in-kernel
// container state to harvest — the stop time is small (vcpu/device state +
// dirty-page copy) but the runtime overhead is large (a VM exit per first
// touch of every page, plus exits for I/O). The workload's `dilation_mc`
// calibrates the latter; the guest OS additionally dirties its own pages
// (`mc_guest_noise_pages` per epoch), which is why MC ships more pages than
// NiLiCon for most benchmarks.
//
// Per the paper's setup, MC runs without disk-state replication (it only
// supports NFS-backed disks, which would be unfairly slow), so no DRBD.
#pragma once

#include <map>
#include <memory>

#include "core/epoch_controller.hpp"
#include "core/metrics.hpp"
#include "core/protocol.hpp"
#include "kernel/kernel.hpp"
#include "net/tcp.hpp"
#include "sim/sync.hpp"
#include "util/rng.hpp"

namespace nlc::mc {

struct McCosts {
  /// Pause + vcpu/device state capture (calibrated from Table III's MC
  /// stop times: 2.4 ms at 212 pages ... 9.4 ms at 6.4K pages).
  Time stop_base = nlc::microseconds(2160);
  Time copy_per_page = nlc::microseconds_f(1.15);
  /// Backup-side receive-and-buffer cost.
  Time backup_base = nlc::microseconds(500);
  Time backup_per_page = nlc::microseconds_f(0.3);
  std::uint64_t device_state_bytes = 64 * 1024;
};

struct McOptions {
  Time epoch_length = nlc::milliseconds(30);
  std::uint64_t guest_noise_pages = 0;  // from AppSpec::mc_guest_noise_pages
  std::uint64_t seed = 1;
};

class McDriver {
 public:
  McDriver(McOptions opts, kern::Kernel& kernel, net::TcpStack& tcp,
           kern::ContainerId cid, core::StateChannel& state_out,
           core::AckChannel& ack_in, core::ReplicationMetrics& metrics);

  /// Performs the initial full synchronization and starts the epoch loop.
  sim::task<> start();
  void stop() { running_ = false; }

  /// Backup-side responder: buffers arriving state and acknowledges. Spawn
  /// under the backup host's domain.
  sim::task<> backup_responder();

 private:
  sim::task<> epoch_loop();
  sim::task<> ack_loop();
  sim::task<> checkpoint_once(bool initial);
  sim::task<> wait_acked(std::uint64_t epoch);
  net::IpAddr service_ip() const;

  McOptions opts_;
  McCosts costs_;
  kern::Kernel* kernel_;
  net::TcpStack* tcp_;
  kern::ContainerId cid_;
  core::StateChannel* state_out_;
  core::AckChannel* ack_in_;
  core::ReplicationMetrics* metrics_;
  /// Fixed-policy pacer: MC always runs the configured epoch length, but
  /// pacing through the same controller abstraction as the NiLiCon agents
  /// keeps one epoch-cadence seam across drivers (DESIGN.md §15) and
  /// stamps epoch_len_ms for the comparison benches.
  core::epochctl::EpochController pacer_;
  Rng rng_;

  bool running_ = true;
  std::uint64_t epoch_ = 0;
  std::uint64_t acked_epoch_ = 0;
  std::unique_ptr<sim::Event> ack_event_;
  std::map<std::uint64_t, std::pair<std::uint64_t, Time>> pending_markers_;
  kern::Pid guest_kernel_pid_ = 0;
  kern::PageNum guest_noise_start_ = 0;
  std::uint64_t guest_noise_pages_mapped_ = 0;
};

}  // namespace nlc::mc
