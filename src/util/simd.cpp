#include "util/simd.hpp"

#include <cstdlib>
#include <string_view>

namespace nlc::util {

const char* simd_tier_name(SimdTier t) {
  switch (t) {
    case SimdTier::kAuto: return "auto";
    case SimdTier::kScalar: return "scalar";
    case SimdTier::kSwar64: return "swar64";
    case SimdTier::kVector: return "simd";
  }
  return "?";
}

bool cpu_supports_vector() {
#if NLC_SIMD_X86
  static const bool ok = __builtin_cpu_supports("avx2") != 0;
  return ok;
#else
  return false;
#endif
}

SimdTier best_simd_tier() {
  return cpu_supports_vector() ? SimdTier::kVector : SimdTier::kSwar64;
}

SimdTier env_simd_tier() {
  const char* v = std::getenv("NLC_SIMD");
  if (v == nullptr || v[0] == '\0') return best_simd_tier();
  const std::string_view s(v);
  if (s == "scalar") return SimdTier::kScalar;
  if (s == "swar64" || s == "swar") return SimdTier::kSwar64;
  if (s == "simd" || s == "avx2" || s == "vector") {
    return cpu_supports_vector() ? SimdTier::kVector : SimdTier::kSwar64;
  }
  return best_simd_tier();  // "auto" and anything unrecognized
}

SimdTier resolve_simd_tier(SimdTier t) {
  if (t == SimdTier::kAuto) return env_simd_tier();
  if (t == SimdTier::kVector && !cpu_supports_vector()) {
    return SimdTier::kSwar64;
  }
  return t;
}

}  // namespace nlc::util
