#include "util/bytes.hpp"

#include <cstdio>

namespace nlc {

namespace {
std::string fmt(double v, const char* suffix) {
  char buf[64];
  if (v >= 100.0) {
    std::snprintf(buf, sizeof buf, "%.0f%s", v, suffix);
  } else if (v >= 10.0) {
    std::snprintf(buf, sizeof buf, "%.1f%s", v, suffix);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f%s", v, suffix);
  }
  return buf;
}
}  // namespace

std::string format_bytes(std::uint64_t bytes) {
  double b = static_cast<double>(bytes);
  if (bytes >= kGiB) return fmt(b / static_cast<double>(kGiB), "G");
  if (bytes >= kMiB) return fmt(b / static_cast<double>(kMiB), "M");
  if (bytes >= kKiB) return fmt(b / static_cast<double>(kKiB), "K");
  return fmt(b, "B");
}

std::string format_duration_ns(std::int64_t ns) {
  double v = static_cast<double>(ns);
  if (ns >= 1'000'000'000) return fmt(v / 1e9, "s");
  if (ns >= 1'000'000) return fmt(v / 1e6, "ms");
  if (ns >= 1'000) return fmt(v / 1e3, "us");
  return fmt(v, "ns");
}

}  // namespace nlc
