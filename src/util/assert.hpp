// Lightweight always-on assertion machinery for the NiLiCon simulator.
//
// Simulation correctness (output commit, epoch ordering, TCP sequence
// invariants) must hold in release builds too, so these checks are never
// compiled out. They are cheap relative to simulated work.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace nlc {

/// Thrown when a simulation invariant is violated. Tests catch this to
/// verify failure-injection behaviour; production code treats it as fatal.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void invariant_failure(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::string full = std::string("invariant violated: ") + expr + " at " +
                     file + ":" + std::to_string(line);
  if (!msg.empty()) full += " (" + msg + ")";
  throw InvariantError(full);
}

}  // namespace nlc

#define NLC_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) [[unlikely]]                                        \
      ::nlc::invariant_failure(#expr, __FILE__, __LINE__, {});       \
  } while (0)

#define NLC_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) [[unlikely]]                                        \
      ::nlc::invariant_failure(#expr, __FILE__, __LINE__, (msg));    \
  } while (0)
