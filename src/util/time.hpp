// Simulated-time types and literals, plus the repository's single wall-clock
// seam.
//
// All simulated time is in integer nanoseconds since simulation start.
// Using a plain integral type keeps the event queue and arithmetic simple;
// the helpers below make call sites read like the paper ("30ms epochs").
#pragma once

#include <chrono>
#include <cstdint>

namespace nlc {

/// Simulated time point / duration, in nanoseconds.
using Time = std::int64_t;

inline constexpr Time kNever = INT64_MAX;

constexpr Time nanoseconds(std::int64_t n) { return n; }
constexpr Time microseconds(std::int64_t n) { return n * 1'000; }
constexpr Time milliseconds(std::int64_t n) { return n * 1'000'000; }
constexpr Time seconds(std::int64_t n) { return n * 1'000'000'000; }

/// Fractional-duration helpers (used by the cost model, which is calibrated
/// with non-integral microsecond constants such as 2.2 us/page).
constexpr Time microseconds_f(double n) {
  return static_cast<Time>(n * 1'000.0);
}
constexpr Time milliseconds_f(double n) {
  return static_cast<Time>(n * 1'000'000.0);
}
constexpr Time seconds_f(double n) { return static_cast<Time>(n * 1e9); }

constexpr double to_seconds(Time t) { return static_cast<double>(t) / 1e9; }
constexpr double to_millis(Time t) { return static_cast<double>(t) / 1e6; }
constexpr double to_micros(Time t) { return static_cast<double>(t) / 1e3; }

namespace util {

/// The one place the repository reads the machine's monotonic clock.
///
/// Everything that measures real elapsed time — ShardStageNanos, the trial
/// runner, the benches, trace wall stamps — goes through this helper so all
/// wall-clock numbers share one clock domain and the two domains (simulated
/// Time vs. wall nanoseconds) are impossible to mix up silently. tools/lint.sh
/// bans raw std::chrono::steady_clock outside src/util. Wall time must never
/// feed back into simulated behaviour (DESIGN.md §10 determinism discipline).
inline std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Seconds elapsed since a wall_now_ns() reading.
inline double wall_seconds_since(std::uint64_t t0_ns) {
  return static_cast<double>(wall_now_ns() - t0_ns) / 1e9;
}

}  // namespace util

namespace literals {
constexpr Time operator""_ns(unsigned long long n) { return Time(n); }
constexpr Time operator""_us(unsigned long long n) {
  return microseconds(Time(n));
}
constexpr Time operator""_ms(unsigned long long n) {
  return milliseconds(Time(n));
}
constexpr Time operator""_s(unsigned long long n) { return seconds(Time(n)); }
}  // namespace literals

}  // namespace nlc
