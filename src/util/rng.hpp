// Deterministic random number generation for the simulator.
//
// Every stochastic component (request generators, fault injectors, workload
// mixes) takes an explicit seed so that any run — including every
// fault-injection trial — is exactly reproducible. Components derive
// sub-seeds with split() so adding a new consumer never perturbs the
// sequences of existing ones.
#pragma once

#include <cstdint>
#include <random>

namespace nlc {

/// SplitMix64: fast, well-distributed 64-bit mixer; used both as a stream
/// splitter and for cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Deterministic RNG wrapper around mt19937_64 with convenience sampling.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(splitmix64(seed)) {}

  /// Derives an independent child generator; `salt` distinguishes siblings.
  Rng split(std::uint64_t salt) {
    return Rng(splitmix64(engine_() ^ splitmix64(salt)));
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform01() < p; }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Normal sample clamped to [lo, hi].
  double normal_clamped(double mean, double stddev, double lo, double hi) {
    double v = std::normal_distribution<double>(mean, stddev)(engine_);
    if (v < lo) return lo;
    if (v > hi) return hi;
    return v;
  }

  std::uint64_t next() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace nlc
