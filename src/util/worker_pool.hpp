// Reusable worker pool for deterministic fan-out.
//
// Shared by the two parallelism layers of the repo:
//  * harness::TrialRunner — parallelism *across* independent simulations
//    (NLC_JOBS, DESIGN.md §9);
//  * the sharded intra-epoch page pipeline — parallelism *within* one
//    epoch's dirty-page work (NLC_SHARDS, DESIGN.md §10).
//
// run(n, fn) executes fn(0..n-1) with the calling thread participating:
// helper threads and the caller pull indices from one atomic counter, so a
// pool with zero helpers degrades to a plain serial loop and forward
// progress never depends on a helper waking up. Work distribution is
// intentionally order-free — every correct use partitions its output by
// index (or merges deterministically afterwards), which is what keeps
// results byte-identical for any helper count.
//
// Nested/concurrent use: run() is safe to call from multiple threads and
// from inside a running task. A caller that cannot take exclusive
// ownership of the helpers (they are busy, or the call is re-entrant from
// this pool) simply executes its batch inline — the nested-pool policy is
// "outermost fan-out wins", so NLC_JOBS trial parallelism keeps the cores
// and nested shard fan-outs collapse to serial loops instead of
// oversubscribing.
//
// If any index's task throws, the exception of the lowest failing index is
// rethrown after the whole batch drained (same contract as TrialRunner).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nlc::util {

/// Upper bound on NLC_SHARDS (and on any sane helper count): the shard
/// merge stages are O(shards) per epoch, so an absurd value only adds
/// overhead.
inline constexpr int kMaxShards = 64;

class WorkerPool {
 public:
  /// Creates `helpers` persistent helper threads (0 is valid: run() then
  /// executes entirely on the calling thread).
  explicit WorkerPool(int helpers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int helpers() const { return static_cast<int>(threads_.size()); }

  /// Executes fn(0), ..., fn(n-1), returning when all have completed. The
  /// caller participates; helpers join in when available. Rethrows the
  /// lowest-index task exception after the batch drains.
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  /// Pulls indices from the current batch until it is exhausted.
  void work(const std::function<void(std::size_t)>& fn, std::size_t n);
  void run_inline(std::size_t n, const std::function<void(std::size_t)>& fn);

  std::vector<std::thread> threads_;

  std::mutex m_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  bool stop_ = false;
  std::uint64_t generation_ = 0;
  int active_ = 0;

  // Current batch (published under m_, consumed via next_).
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t n_ = 0;
  std::atomic<std::size_t> next_{0};
  std::exception_ptr error_;
  std::size_t error_index_ = 0;

  /// Serializes concurrent run() callers; a caller that cannot take it
  /// immediately runs inline (nested-pool policy).
  std::mutex dispatch_m_;
};

/// NLC_SHARDS: page-pipeline shard count. Unset or 0 means hardware
/// concurrency; always clamped to [1, kMaxShards].
int env_shards();

/// Process-wide pool for the sharded page pipeline, shared by every agent
/// in every concurrently running trial (helpers are sized once from the
/// hardware). Trials that find it busy fall back to inline shard loops —
/// see the nested-pool policy above.
WorkerPool& shard_pool();

}  // namespace nlc::util
