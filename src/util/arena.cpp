#include "util/arena.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace nlc::util {

namespace {

constexpr std::size_t kMinShift = std::bit_width(kArenaMinBlock) - 1;  // 6
constexpr std::size_t kMaxShift = std::bit_width(kArenaMaxBlock) - 1;  // 16
constexpr std::size_t kClasses = kMaxShift - kMinShift + 1;

/// Blocks moved between a thread cache and the central freelist per
/// refill/spill, and the cache's high-water mark per class.
constexpr std::size_t kBatch = 32;
constexpr std::size_t kCacheCap = 2 * kBatch;

std::size_t class_of(std::size_t bytes) {
  const std::size_t rounded =
      bytes <= kArenaMinBlock ? kArenaMinBlock : std::bit_ceil(bytes);
  return (std::bit_width(rounded) - 1) - kMinShift;
}

std::size_t class_bytes(std::size_t cls) { return kArenaMinBlock << cls; }

/// Process-wide slab owner + central freelists. Function-local static:
/// constructed on first use (before any thread cache that touches it, so it
/// is destroyed after them), never shrinks while the process runs.
class Arena {
 public:
  static Arena& instance() {
    static Arena a;
    return a;
  }

  /// Moves up to kBatch blocks of `cls` into `out`; carves a fresh slab
  /// when the central list is empty.
  void refill(std::size_t cls, std::vector<void*>& out) {
    std::lock_guard<std::mutex> lock(m_);
    auto& central = central_[cls];
    if (central.empty()) carve_slab(cls);
    const std::size_t take = central.size() < kBatch ? central.size() : kBatch;
    out.insert(out.end(), central.end() - static_cast<std::ptrdiff_t>(take),
               central.end());
    central.resize(central.size() - take);
    arena_allocs_.fetch_add(take, std::memory_order_relaxed);
  }

  /// Returns `blocks` of `cls` to the central freelist.
  void spill(std::size_t cls, std::vector<void*>& blocks, std::size_t keep) {
    std::lock_guard<std::mutex> lock(m_);
    auto& central = central_[cls];
    central.insert(central.end(), blocks.begin() + static_cast<std::ptrdiff_t>(keep),
                   blocks.end());
    blocks.resize(keep);
  }

  ArenaStats stats() const {
    std::lock_guard<std::mutex> lock(m_);
    ArenaStats s;
    s.slab_bytes = slab_bytes_;
    s.slabs = slabs_.size();
    s.arena_allocs = arena_allocs_.load(std::memory_order_relaxed);
    s.fallback_allocs = fallback_allocs_.load(std::memory_order_relaxed);
    return s;
  }

  void count_fallback() {
    fallback_allocs_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  void carve_slab(std::size_t cls) {
    const std::size_t bsz = class_bytes(cls);
    std::size_t slab = env_arena_slab_bytes();
    if (slab < bsz) slab = bsz;
    auto mem = std::make_unique<std::byte[]>(slab);
    std::byte* base = mem.get();
    auto& central = central_[cls];
    for (std::size_t off = 0; off + bsz <= slab; off += bsz) {
      central.push_back(base + off);
    }
    slab_bytes_ += slab;
    slabs_.push_back(std::move(mem));
  }

  mutable std::mutex m_;
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::vector<void*> central_[kClasses];
  std::uint64_t slab_bytes_ = 0;
  std::atomic<std::uint64_t> arena_allocs_{0};
  std::atomic<std::uint64_t> fallback_allocs_{0};
};

/// Per-thread block cache. The constructor pins the arena singleton so the
/// destructor (thread exit / process exit) can always flush into it.
class ThreadCache {
 public:
  ThreadCache() : arena_(&Arena::instance()) {}

  ~ThreadCache() {
    for (std::size_t cls = 0; cls < kClasses; ++cls) {
      if (!free_[cls].empty()) arena_->spill(cls, free_[cls], 0);
    }
  }

  void* allocate(std::size_t cls) {
    auto& cache = free_[cls];
    if (cache.empty()) arena_->refill(cls, cache);
    void* p = cache.back();
    cache.pop_back();
    return p;
  }

  void deallocate(std::size_t cls, void* p) {
    auto& cache = free_[cls];
    cache.push_back(p);
    if (cache.size() > kCacheCap) arena_->spill(cls, cache, kBatch);
  }

 private:
  Arena* arena_;
  std::vector<void*> free_[kClasses];
};

ThreadCache& local_cache() {
  thread_local ThreadCache cache;
  return cache;
}

}  // namespace

namespace detail {

bool arena_serves(std::size_t bytes, std::size_t alignment) {
  return bytes <= kArenaMaxBlock && alignment <= alignof(std::max_align_t);
}

void* arena_allocate(std::size_t bytes) {
  return local_cache().allocate(class_of(bytes));
}

void arena_deallocate(void* p, std::size_t bytes) {
  local_cache().deallocate(class_of(bytes), p);
}

void arena_count_fallback() { Arena::instance().count_fallback(); }

}  // namespace detail

ArenaStats arena_stats() { return Arena::instance().stats(); }

std::size_t env_arena_slab_bytes() {
  static const std::size_t bytes = [] {
    std::size_t kb = 256;
    if (const char* v = std::getenv("NLC_ARENA_SLAB_KB");
        v != nullptr && v[0] != '\0') {
      const long parsed = std::atol(v);
      if (parsed >= 64 && parsed <= 16384) {
        kb = static_cast<std::size_t>(parsed);
      }
    }
    return kb * 1024;
  }();
  return bytes;
}

}  // namespace nlc::util
