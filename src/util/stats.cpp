#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace nlc {

void Samples::add(double v) {
  values_.push_back(v);
  sum_ += v;
  sorted_valid_ = false;
}

void Samples::clear() {
  values_.clear();
  sorted_.clear();
  sorted_valid_ = false;
  sum_ = 0.0;
}

double Samples::mean() const {
  NLC_CHECK(!values_.empty());
  return sum_ / static_cast<double>(values_.size());
}

void Samples::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Samples::min() const {
  NLC_CHECK(!values_.empty());
  ensure_sorted();
  return sorted_.front();
}

double Samples::max() const {
  NLC_CHECK(!values_.empty());
  ensure_sorted();
  return sorted_.back();
}

double Samples::percentile(double p) const {
  NLC_CHECK(!values_.empty());
  NLC_CHECK(p >= 0.0 && p <= 100.0);
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_[0];
  // Nearest-rank with linear interpolation between adjacent order statistics.
  double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  auto hi = std::min(lo + 1, sorted_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::string Samples::summary_json() const {
  double m = 0, p50 = 0, p99 = 0, p9 = 0;
  if (!values_.empty()) {
    m = mean();
    p50 = percentile(50);
    p99 = percentile(99);
    p9 = p999();
  }
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "\"mean\": %.6g, \"p50\": %.6g, \"p99\": %.6g, "
                "\"p999\": %.6g, \"count\": %zu",
                m, p50, p99, p9, values_.size());
  return buf;
}

double Samples::stddev() const {
  if (values_.size() < 2) return 0.0;
  double m = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Samples::cv() const {
  if (values_.empty()) return 0.0;
  double m = mean();
  if (m == 0.0) return 0.0;
  return stddev() / m;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  NLC_CHECK(hi > lo);
  NLC_CHECK(buckets > 0);
}

void Histogram::add(double v) {
  ++total_;
  if (v < lo_) {
    ++underflow_;
  } else if (v >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((v - lo_) / width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;
    ++counts_[idx];
  }
}

}  // namespace nlc
