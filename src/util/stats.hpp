// Online statistics accumulators used by the measurement harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace nlc {

/// Accumulates samples and answers mean / percentile / extrema queries.
/// Stores raw samples (the experiment scales here are at most a few million
/// samples) so percentiles are exact, matching the paper's P10/P50/P90
/// reporting in Table IV.
class Samples {
 public:
  void add(double v);
  void clear();

  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double sum() const { return sum_; }
  double mean() const;
  double min() const;
  double max() const;
  /// Exact percentile by nearest-rank; p in [0, 100].
  double percentile(double p) const;
  /// Tail percentile shorthand (99.9th), the paper's long-tail lens.
  double p999() const { return percentile(99.9); }
  /// The standard summary fields as a JSON fragment without enclosing
  /// braces — `"mean": …, "p50": …, "p99": …, "p999": …, "count": n` — so
  /// callers can splice extra fields (a label, a unit) into the same
  /// object. All BENCH_*.json point emission goes through this.
  std::string summary_json() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double stddev() const;
  /// Coefficient of variation (stddev / mean); 0 when mean is 0.
  double cv() const;

  const std::vector<double>& values() const { return values_; }

 private:
  void ensure_sorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0.0;
};

/// Simple fixed-width histogram for distribution sanity checks in tests.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double v);
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

}  // namespace nlc
