// Byte-size helpers shared by the checkpoint engine and the reporters.
#pragma once

#include <cstdint>
#include <string>

namespace nlc {

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

/// 4 KiB pages throughout, as on the paper's x86-64 hosts.
inline constexpr std::uint64_t kPageSize = 4 * kKiB;

/// Formats a byte count the way the paper's tables do ("24.2M", "53.1K").
std::string format_bytes(std::uint64_t bytes);

/// Formats a simulated-time duration in adaptive units ("5.1ms", "43us").
std::string format_duration_ns(std::int64_t ns);

}  // namespace nlc
