// Runtime-dispatched byte-span scan kernels for the delta codec
// (DESIGN.md §12).
//
// The XOR + run-length encoder (criu/delta.hpp) spends nearly all of its
// time answering two questions about a pair of 4 KiB buffers: "where is the
// next differing byte?" (skipping the equal spans that dominate a typical
// dirty page) and "where is the next equal byte?" (bounding a changed run).
// This module provides those two primitives at three implementation tiers
// behind one dispatch seam:
//
//  * kScalar — byte-at-a-time reference loops;
//  * kSwar64 — 8 bytes per compare via uint64 XOR + countr_zero /
//    zero-byte-detection bit tricks (little-endian only; big-endian targets
//    silently run the scalar loops);
//  * kVector — 32 bytes per compare via AVX2 cmpeq/movemask intrinsics,
//    compiled with a per-function target attribute and guarded by a
//    runtime CPU check, so the binary stays runnable on any x86-64 (and
//    non-x86 builds fall back to kSwar64).
//
// Every tier returns bit-identical results for every input — the encoder
// built on top is property-tested against the scalar reference
// (tests/simd_kernel_test.cpp). Tier selection: NLC_SIMD env
// (scalar | swar64 | simd | auto) or core::Options::simd_tier.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define NLC_SIMD_X86 1
#else
#define NLC_SIMD_X86 0
#endif

namespace nlc::util {

enum class SimdTier : std::uint8_t { kAuto, kScalar, kSwar64, kVector };

const char* simd_tier_name(SimdTier t);

/// True when the vector tier (AVX2) can run on this CPU.
bool cpu_supports_vector();

/// Fastest tier this build + CPU supports (kVector or kSwar64).
SimdTier best_simd_tier();

/// NLC_SIMD env: "scalar", "swar64"/"swar", "simd"/"avx2"/"vector", or
/// "auto"/unset (= best_simd_tier()). Unsupported requests clamp down to
/// the best runnable tier. Never returns kAuto. Re-reads the environment on
/// every call so tests can flip tiers within one process.
SimdTier env_simd_tier();

/// kAuto -> env_simd_tier(); concrete tiers clamp to what the CPU runs.
SimdTier resolve_simd_tier(SimdTier t);

/// Prefetch `p` for reading into all cache levels. No-op where the builtin
/// is unavailable.
inline void prefetch_read(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 0, 3);
#else
  (void)p;
#endif
}

namespace simd_detail {

inline std::size_t find_diff_scalar(const std::byte* a, const std::byte* b,
                                    std::size_t i, std::size_t n) {
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

inline std::size_t find_same_scalar(const std::byte* a, const std::byte* b,
                                    std::size_t i, std::size_t n) {
  while (i < n && a[i] != b[i]) ++i;
  return i;
}

inline std::size_t find_diff_swar(const std::byte* a, const std::byte* b,
                                  std::size_t i, std::size_t n) {
  if constexpr (std::endian::native == std::endian::little) {
    while (i + 8 <= n) {
      std::uint64_t x = 0;
      std::uint64_t y = 0;
      std::memcpy(&x, a + i, 8);
      std::memcpy(&y, b + i, 8);
      if (x != y) {
        return i + (static_cast<std::size_t>(std::countr_zero(x ^ y)) >> 3);
      }
      i += 8;
    }
  }
  return find_diff_scalar(a, b, i, n);
}

inline std::size_t find_same_swar(const std::byte* a, const std::byte* b,
                                  std::size_t i, std::size_t n) {
  if constexpr (std::endian::native == std::endian::little) {
    constexpr std::uint64_t kLow = 0x0101010101010101ull;
    constexpr std::uint64_t kHigh = 0x8080808080808080ull;
    while (i + 8 <= n) {
      std::uint64_t x = 0;
      std::uint64_t y = 0;
      std::memcpy(&x, a + i, 8);
      std::memcpy(&y, b + i, 8);
      const std::uint64_t v = x ^ y;
      // Zero-byte detection: bits below the first zero byte are exact, so
      // countr_zero lands on the first equal byte.
      const std::uint64_t zero = (v - kLow) & ~v & kHigh;
      if (zero != 0) {
        return i + (static_cast<std::size_t>(std::countr_zero(zero)) >> 3);
      }
      i += 8;
    }
  }
  return find_same_scalar(a, b, i, n);
}

#if NLC_SIMD_X86

__attribute__((target("avx2"))) inline std::size_t find_diff_avx2(
    const std::byte* a, const std::byte* b, std::size_t i, std::size_t n) {
  while (i + 32 <= n) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const auto eq = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)));
    if (eq != 0xFFFFFFFFu) {
      return i + static_cast<std::size_t>(std::countr_zero(~eq));
    }
    i += 32;
  }
  return find_diff_swar(a, b, i, n);
}

__attribute__((target("avx2"))) inline std::size_t find_same_avx2(
    const std::byte* a, const std::byte* b, std::size_t i, std::size_t n) {
  while (i + 32 <= n) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const auto eq = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)));
    if (eq != 0) {
      return i + static_cast<std::size_t>(std::countr_zero(eq));
    }
    i += 32;
  }
  return find_same_swar(a, b, i, n);
}

#endif  // NLC_SIMD_X86

}  // namespace simd_detail

/// First index in [i, n) where a and b differ; n if none.
inline std::size_t find_diff(const std::byte* a, const std::byte* b,
                             std::size_t i, std::size_t n, SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return simd_detail::find_diff_scalar(a, b, i, n);
#if NLC_SIMD_X86
    case SimdTier::kVector:
      return simd_detail::find_diff_avx2(a, b, i, n);
#endif
    default:
      return simd_detail::find_diff_swar(a, b, i, n);
  }
}

/// First index in [i, n) where a and b agree; n if none.
inline std::size_t find_same(const std::byte* a, const std::byte* b,
                             std::size_t i, std::size_t n, SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return simd_detail::find_same_scalar(a, b, i, n);
#if NLC_SIMD_X86
    case SimdTier::kVector:
      return simd_detail::find_same_avx2(a, b, i, n);
#endif
    default:
      return simd_detail::find_same_swar(a, b, i, n);
  }
}

}  // namespace nlc::util
