#include "util/worker_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace nlc::util {

namespace {
/// The pool a thread is currently executing a batch for (caller or
/// helper). Guards against re-entrant run() on the same pool, where
/// try_lock on the already-owned dispatch mutex would be undefined.
thread_local const WorkerPool* t_busy_pool = nullptr;
}  // namespace

WorkerPool::WorkerPool(int helpers) {
  if (helpers < 0) helpers = 0;
  threads_.reserve(static_cast<std::size_t>(helpers));
  for (int i = 0; i < helpers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::run_inline(std::size_t n,
                            const std::function<void(std::size_t)>& fn) {
  // Serial fallback: attempt every index (parity with the parallel path,
  // which drains the whole batch before rethrowing), keep the first —
  // lowest-index — exception.
  std::exception_ptr err;
  for (std::size_t i = 0; i < n; ++i) {
    try {
      fn(i);
    } catch (...) {
      if (!err) err = std::current_exception();
    }
  }
  if (err) std::rethrow_exception(err);
}

void WorkerPool::work(const std::function<void(std::size_t)>& fn,
                      std::size_t n) {
  for (;;) {
    std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    try {
      fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lk(m_);
      if (!error_ || i < error_index_) {
        error_ = std::current_exception();
        error_index_ = i;
      }
    }
  }
}

void WorkerPool::run(std::size_t n,
                     const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_.empty() || n == 1 || t_busy_pool == this) {
    run_inline(n, fn);
    return;
  }
  std::unique_lock<std::mutex> dispatch(dispatch_m_, std::try_to_lock);
  if (!dispatch.owns_lock()) {
    // Helpers are owned by another fan-out right now; nested-pool policy
    // says the outermost one keeps them.
    run_inline(n, fn);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(m_);
    fn_ = &fn;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    error_index_ = n;
    active_ = static_cast<int>(threads_.size());
    ++generation_;
  }
  cv_start_.notify_all();

  const WorkerPool* prev = t_busy_pool;
  t_busy_pool = this;
  work(fn, n);
  t_busy_pool = prev;

  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lk(m_);
    cv_done_.wait(lk, [this] { return active_ == 0; });
    fn_ = nullptr;
    err = error_;
    error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void WorkerPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock<std::mutex> lk(m_);
      cv_start_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      fn = fn_;
      n = n_;
    }
    const WorkerPool* prev = t_busy_pool;
    t_busy_pool = this;
    work(*fn, n);
    t_busy_pool = prev;
    {
      std::lock_guard<std::mutex> lk(m_);
      if (--active_ == 0) cv_done_.notify_all();
    }
  }
}

int env_shards() {
  if (const char* v = std::getenv("NLC_SHARDS"); v != nullptr && v[0] != '\0') {
    int s = std::atoi(v);
    if (s >= 1) return std::min(s, kMaxShards);
  }
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return std::min(static_cast<int>(hw), kMaxShards);
}

WorkerPool& shard_pool() {
  // Helpers are sized from the hardware, not from NLC_SHARDS: a shard
  // count above the core count still partitions the data (the contract is
  // shard-count-invariant output), it just shares the real cores.
  static WorkerPool pool(
      std::max(0, std::min(static_cast<int>(
                               std::thread::hardware_concurrency() == 0
                                   ? 1
                                   : std::thread::hardware_concurrency()),
                           kMaxShards) -
                      1));
  return pool;
}

}  // namespace nlc::util
