// Slab/arena allocation for the epoch page pipeline (DESIGN.md §12).
//
// The per-epoch hot path used to hit the general-purpose heap once or twice
// per page: a 4 KiB payload buffer per COW clone plus a radix node per
// first-touch fold. At 100K pages/epoch the allocator metadata and the
// scattered placement dominate cache behaviour — the pipeline goes
// memory-bound (ROADMAP open item 5). This module replaces those calls with
// a size-class slab arena:
//
//  * one process-wide `Arena` owns large slabs (NLC_ARENA_SLAB_KB, default
//    256 KiB) and carves them into power-of-two blocks (64 B .. 64 KiB);
//  * each thread keeps a small per-class cache of free blocks, refilled and
//    spilled in batches, so steady-state allocation is a thread-local
//    vector pop — no lock, no malloc. Blocks freed on a different thread
//    than they were allocated on simply join the freeing thread's cache
//    (blocks of one class are interchangeable; the slab memory itself is
//    owned by the arena for the process lifetime);
//  * slab carving is a bump pointer, so the payloads/nodes a shard
//    allocates during one harvest/encode/fold burst are contiguous in
//    allocation order — the walks that revisit them scan forward through a
//    few slabs instead of pointer-chasing the heap.
//
// `ArenaAllocator<T>` adapts the arena to standard containers; PageBytes
// (kernel/address_space.hpp) and the RadixPageStore's tables/records ride
// it. `arena_make_shared<T>()` is the mandated factory for refcounted
// payloads (control block and object land in one arena block; lint bans
// make_shared<PageBytes> elsewhere). COW semantics are untouched: the
// shared_ptr refcount machinery is exactly std::allocate_shared's.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "util/assert.hpp"

namespace nlc::util {

/// Smallest and largest block the arena serves; requests outside the range
/// (or with extended alignment) fall through to operator new.
inline constexpr std::size_t kArenaMinBlock = 64;
inline constexpr std::size_t kArenaMaxBlock = 64 * 1024;

/// Allocation stats, for benches and tests (process-wide totals).
struct ArenaStats {
  std::uint64_t slab_bytes = 0;       // bytes reserved in slabs
  std::uint64_t slabs = 0;            // slab count
  /// Blocks handed from the central freelists to thread caches. Cache-warm
  /// allocations are served without touching this counter (the hot path is
  /// a thread-local pop), so this tracks refill traffic, not call volume.
  std::uint64_t arena_allocs = 0;
  std::uint64_t fallback_allocs = 0;  // requests routed to operator new
};

namespace detail {
void* arena_allocate(std::size_t bytes);
void arena_deallocate(void* p, std::size_t bytes);
bool arena_serves(std::size_t bytes, std::size_t alignment);
void arena_count_fallback();
}  // namespace detail

ArenaStats arena_stats();

/// NLC_ARENA_SLAB_KB: slab granularity in KiB (clamped to [64, 16384];
/// default 256). Read once at first allocation.
std::size_t env_arena_slab_bytes();

/// Standard allocator over the thread-cached slab arena. Stateless: any
/// instance can free any instance's blocks (all storage is process-wide),
/// so containers move freely across threads and shards.
template <typename T>
struct ArenaAllocator {
  using value_type = T;

  ArenaAllocator() noexcept = default;
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>&) noexcept {}  // NOLINT

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    if (detail::arena_serves(bytes, alignof(T))) {
      return static_cast<T*>(detail::arena_allocate(bytes));
    }
    detail::arena_count_fallback();
    return static_cast<T*>(::operator new(bytes));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    const std::size_t bytes = n * sizeof(T);
    if (detail::arena_serves(bytes, alignof(T))) {
      detail::arena_deallocate(p, bytes);
      return;
    }
    ::operator delete(p);
  }

  friend bool operator==(const ArenaAllocator&, const ArenaAllocator&) {
    return true;
  }
};

/// The factory for refcounted page payloads (and any other shared hot-path
/// object): control block + object in one arena block via allocate_shared.
/// tools/lint.sh bans make_shared/make_unique of payload/node types outside
/// this header so per-page heap traffic cannot creep back in.
template <typename T, typename... Args>
std::shared_ptr<T> arena_make_shared(Args&&... args) {
  return std::allocate_shared<T>(ArenaAllocator<T>{},
                                 std::forward<Args>(args)...);
}

}  // namespace nlc::util
