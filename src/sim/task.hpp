// Coroutine task type for the discrete-event simulator.
//
// `task<T>` is a lazy coroutine: creating one does not run any code; it
// starts when awaited (symmetric transfer) or when handed to
// Simulation::spawn(). Exceptions thrown inside a task propagate to the
// awaiter; exceptions escaping a spawned root task are captured by the
// simulator and rethrown from Simulation::run().
//
// Ownership: the task object owns the coroutine frame. Destroying a task
// destroys the frame even if it is suspended, which recursively destroys
// any child task frames it owns — this is how the simulator tears down
// coroutines that were frozen by a host failure.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>
#include <variant>

#include "util/assert.hpp"

namespace nlc::sim {

template <typename T = void>
class task;

namespace detail {

template <typename T>
struct PromiseStorage {
  std::variant<std::monostate, T, std::exception_ptr> result;

  template <typename U>
  void return_value(U&& v) {
    result.template emplace<1>(std::forward<U>(v));
  }
  void unhandled_exception() noexcept {
    result.template emplace<2>(std::current_exception());
  }
  T take_result() {
    if (result.index() == 2) std::rethrow_exception(std::get<2>(result));
    NLC_CHECK_MSG(result.index() == 1, "task finished without a value");
    return std::move(std::get<1>(result));
  }
};

template <>
struct PromiseStorage<void> {
  std::exception_ptr error;

  void return_void() noexcept {}
  void unhandled_exception() noexcept { error = std::current_exception(); }
  void take_result() {
    if (error) std::rethrow_exception(error);
  }
};

struct FinalAwaiter {
  bool await_ready() noexcept { return false; }
  template <typename Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    auto cont = h.promise().continuation;
    return cont ? cont : std::noop_coroutine();
  }
  void await_resume() noexcept {}
};

}  // namespace detail

template <typename T>
class [[nodiscard]] task {
 public:
  struct promise_type : detail::PromiseStorage<T> {
    std::coroutine_handle<> continuation;

    task get_return_object() {
      return task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    detail::FinalAwaiter final_suspend() noexcept { return {}; }
  };

  task() = default;
  task(task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  task& operator=(task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  task(const task&) = delete;
  task& operator=(const task&) = delete;
  ~task() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(handle_); }

  /// Awaiting a task starts it; the awaiter resumes when it completes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;  // symmetric transfer: run the child now
      }
      T await_resume() { return h.promise().take_result(); }
    };
    NLC_CHECK_MSG(handle_, "awaiting an empty task");
    return Awaiter{handle_};
  }

  /// Internal: used by Simulation::spawn to take over the frame.
  std::coroutine_handle<promise_type> release() noexcept {
    return std::exchange(handle_, {});
  }

 private:
  explicit task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_{};
};

}  // namespace nlc::sim
