#include "sim/simulation.hpp"

#include <limits>
#include <utility>

namespace nlc::sim {

namespace {
// Typical experiments keep hundreds of in-flight wakeups; reserving up
// front keeps the hot loop free of heap growth until a workload genuinely
// exceeds it.
constexpr std::size_t kInitialQueueCapacity = 1024;
}  // namespace

Simulation::Simulation() {
  queue_.reserve(kInitialQueueCapacity);
  now_queue_.reserve(kInitialQueueCapacity);
}

Simulation::~Simulation() { shutdown(); }

TimerHandle Simulation::call_at(Time t, DomainPtr domain,
                                std::function<void()> fn) {
  NLC_CHECK_MSG(t >= now_, "cannot schedule an event in the past");
  auto state = std::make_shared<TimerHandle::State>();
  state->fn = std::move(fn);
  state->domain = std::move(domain);
  TimerHandle handle{std::weak_ptr<TimerHandle::State>(state)};
  enqueue(QueueEntry{t, next_seq_++, {}, std::move(state)});
  return handle;
}

TimerHandle Simulation::call_after(Time delay, DomainPtr domain,
                                   std::function<void()> fn) {
  NLC_CHECK_MSG(delay >= 0, "negative delay");
  return call_at(now_ + delay, std::move(domain), std::move(fn));
}

void Simulation::schedule_resume(Time t, DomainPtr domain,
                                 std::coroutine_handle<> h) {
  if (resume_fast_path_) {
    // Dedicated resume entry: no TimerHandle::State allocation and no
    // type-erased std::function — resumes dominate the event mix
    // (sleep_for + every sync-primitive wakeup), so this is the engine's
    // hot path.
    NLC_CHECK_MSG(t >= now_, "cannot schedule a resume in the past");
    enqueue(QueueEntry{t, next_seq_++, h, std::move(domain)});
    return;
  }
  call_at(t, std::move(domain), [h] { h.resume(); });
}

Simulation::RootDriver Simulation::drive(task<> t) {
  auto self = co_await SelfHandle{};
  register_root(self);
  // Ensure deregistration on every exit path, including frame destruction
  // during shutdown() while this driver is suspended inside `t`.
  struct Guard {
    Simulation* sim;
    std::coroutine_handle<> h;
    ~Guard() { sim->unregister_root(h); }
  } guard{this, self};

  try {
    co_await std::move(t);
  } catch (...) {
    record_exception(std::current_exception());
  }
}

void Simulation::spawn(DomainPtr domain, task<> t) {
  NLC_CHECK_MSG(t.valid(), "spawning an empty task");
  if (domain && !domain->alive()) return;  // code on a dead host never runs
  DomainPtr saved = std::exchange(current_domain_, std::move(domain));
  drive(std::move(t));  // runs eagerly until the first suspension
  current_domain_ = std::move(saved);
}

void Simulation::register_root(std::coroutine_handle<> h) {
  root_index_.emplace(h.address(), live_roots_.size());
  live_roots_.push_back(h.address());
}

void Simulation::unregister_root(std::coroutine_handle<> h) {
  if (tearing_down_) return;  // container is being drained by shutdown()
  auto it = root_index_.find(h.address());
  if (it == root_index_.end()) return;
  const std::size_t idx = it->second;
  void* const last = live_roots_.back();
  live_roots_[idx] = last;
  live_roots_.pop_back();
  if (last != h.address()) root_index_.find(last)->second = idx;
  root_index_.erase(it);
}

void Simulation::record_exception(std::exception_ptr e) {
  if (!pending_exception_) pending_exception_ = std::move(e);
  stop_requested_ = true;
}

void Simulation::rethrow_if_failed() {
  if (pending_exception_) {
    auto e = std::exchange(pending_exception_, nullptr);
    std::rethrow_exception(e);
  }
}

bool Simulation::dispatch(QueueEntry& entry) {
  if (entry.resume) {
    // Fast path: plain coroutine resume, no cancellation protocol. The
    // domain moves out of the entry, so a live resume costs no refcounts.
    auto* domain = static_cast<Domain*>(entry.ref.get());
    if (domain && !domain->alive()) return false;
    ++events_processed_;
    DomainPtr saved = std::exchange(
        current_domain_,
        std::static_pointer_cast<Domain>(std::move(entry.ref)));
    entry.resume.resume();
    current_domain_ = std::move(saved);
  } else {
    // entry.ref keeps the state alive across fn() even if the callback
    // drops its own TimerHandle.
    auto& state = *static_cast<TimerHandle::State*>(entry.ref.get());
    if (state.cancelled) return false;
    if (state.domain && !state.domain->alive()) return false;
    state.fired = true;
    ++events_processed_;
    DomainPtr saved = std::exchange(current_domain_, state.domain);
    state.fn();
    current_domain_ = std::move(saved);
  }
  if (audit_probe_ && ++events_since_probe_ >= audit_probe_every_) {
    events_since_probe_ = 0;
    audit_probe_();  // outside any coroutine: an InvariantError escapes run()
  }
  return true;
}

void Simulation::enqueue(QueueEntry entry) {
  // The same-time lane is part of the fast-path redesign; with the knob
  // off the engine reproduces the legacy cost model (every event heap-
  // sifted), which is what the microbenchmark compares against. Routing
  // does not affect event order either way: the lane preserves (time, seq).
  if (resume_fast_path_ && entry.time == now_) {
    now_queue_.push_back(std::move(entry));
  } else {
    queue_.push(std::move(entry));
  }
}

bool Simulation::pop_next(QueueEntry& out, Time limit) {
  if (now_head_ < now_queue_.size()) {
    // Heap entries at the current time (scheduled before now_ got here)
    // predate everything in the same-time lane, so they go first.
    if (!queue_.empty() && queue_.top().time == now_) {
      out = queue_.pop_top();
      return true;
    }
    out = std::move(now_queue_[now_head_++]);
    if (now_head_ == now_queue_.size()) {
      now_queue_.clear();
      now_head_ = 0;
    }
    return true;
  }
  if (queue_.empty() || queue_.top().time > limit) return false;
  out = queue_.pop_top();
  return true;
}

bool Simulation::step() {
  QueueEntry entry;
  while (pop_next(entry, std::numeric_limits<Time>::max())) {
    NLC_CHECK(entry.time >= now_);
    now_ = entry.time;
    if (dispatch(entry)) return true;
    // cancelled / dead-domain entries are skipped without counting
  }
  return false;
}

void Simulation::run() {
  stop_requested_ = false;
  rethrow_if_failed();
  while (!stop_requested_ && step()) {
  }
  rethrow_if_failed();
}

void Simulation::run_until(Time deadline) {
  NLC_CHECK(deadline >= now_);
  stop_requested_ = false;
  rethrow_if_failed();
  QueueEntry entry;
  while (!stop_requested_ && pop_next(entry, deadline)) {
    now_ = entry.time;
    dispatch(entry);
    entry = QueueEntry{};  // drop refs before the next pop
  }
  rethrow_if_failed();
  if (now_ < deadline) now_ = deadline;
}

void Simulation::shutdown() {
  if (tearing_down_) return;
  tearing_down_ = true;
  // Destroy suspended root frames. Destruction recursively destroys child
  // task frames and runs awaiter destructors, which deregister from sync
  // primitives (all still alive at this point by the documented ownership
  // convention: Simulation members are declared before the components its
  // coroutines reference, or shutdown() is called explicitly first).
  // Registration order: deterministic, unlike the frame addresses.
  auto roots = std::move(live_roots_);
  live_roots_.clear();
  root_index_.clear();
  for (void* addr : roots) {
    std::coroutine_handle<>::from_address(addr).destroy();
  }
}

}  // namespace nlc::sim
