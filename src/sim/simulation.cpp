#include "sim/simulation.hpp"

#include <utility>

namespace nlc::sim {

Simulation::Simulation() = default;

Simulation::~Simulation() { shutdown(); }

TimerHandle Simulation::call_at(Time t, DomainPtr domain,
                                std::function<void()> fn) {
  NLC_CHECK_MSG(t >= now_, "cannot schedule an event in the past");
  auto state = std::make_shared<TimerHandle::State>();
  state->fn = std::move(fn);
  state->domain = std::move(domain);
  queue_.push(QueueEntry{t, next_seq_++, state});
  return TimerHandle(state);
}

TimerHandle Simulation::call_after(Time delay, DomainPtr domain,
                                   std::function<void()> fn) {
  NLC_CHECK_MSG(delay >= 0, "negative delay");
  return call_at(now_ + delay, std::move(domain), std::move(fn));
}

void Simulation::schedule_resume(Time t, DomainPtr domain,
                                 std::coroutine_handle<> h) {
  call_at(t, std::move(domain), [h] { h.resume(); });
}

Simulation::RootDriver Simulation::drive(task<> t) {
  auto self = co_await SelfHandle{};
  register_root(self);
  // Ensure deregistration on every exit path, including frame destruction
  // during shutdown() while this driver is suspended inside `t`.
  struct Guard {
    Simulation* sim;
    std::coroutine_handle<> h;
    ~Guard() { sim->unregister_root(h); }
  } guard{this, self};

  try {
    co_await std::move(t);
  } catch (...) {
    record_exception(std::current_exception());
  }
}

void Simulation::spawn(DomainPtr domain, task<> t) {
  NLC_CHECK_MSG(t.valid(), "spawning an empty task");
  if (domain && !domain->alive()) return;  // code on a dead host never runs
  DomainPtr saved = std::exchange(current_domain_, std::move(domain));
  drive(std::move(t));  // runs eagerly until the first suspension
  current_domain_ = std::move(saved);
}

void Simulation::register_root(std::coroutine_handle<> h) {
  live_roots_.insert(h.address());
}

void Simulation::unregister_root(std::coroutine_handle<> h) {
  if (tearing_down_) return;  // container is being drained by shutdown()
  live_roots_.erase(h.address());
}

void Simulation::record_exception(std::exception_ptr e) {
  if (!pending_exception_) pending_exception_ = std::move(e);
  stop_requested_ = true;
}

void Simulation::rethrow_if_failed() {
  if (pending_exception_) {
    auto e = std::exchange(pending_exception_, nullptr);
    std::rethrow_exception(e);
  }
}

bool Simulation::dispatch(const QueueEntry& entry) {
  auto& state = *entry.state;
  if (state.cancelled) return false;
  if (state.domain && !state.domain->alive()) return false;
  state.fired = true;
  ++events_processed_;
  DomainPtr saved = std::exchange(current_domain_, state.domain);
  state.fn();
  current_domain_ = std::move(saved);
  if (audit_probe_ && ++events_since_probe_ >= audit_probe_every_) {
    events_since_probe_ = 0;
    audit_probe_();  // outside any coroutine: an InvariantError escapes run()
  }
  return true;
}

bool Simulation::step() {
  while (!queue_.empty()) {
    QueueEntry entry = queue_.top();
    queue_.pop();
    NLC_CHECK(entry.time >= now_);
    now_ = entry.time;
    if (dispatch(entry)) return true;
    // cancelled / dead-domain entries are skipped without counting
  }
  return false;
}

void Simulation::run() {
  stop_requested_ = false;
  rethrow_if_failed();
  while (!stop_requested_ && step()) {
  }
  rethrow_if_failed();
}

void Simulation::run_until(Time deadline) {
  NLC_CHECK(deadline >= now_);
  stop_requested_ = false;
  rethrow_if_failed();
  while (!stop_requested_ && !queue_.empty() &&
         queue_.top().time <= deadline) {
    QueueEntry entry = queue_.top();
    queue_.pop();
    now_ = entry.time;
    dispatch(entry);
  }
  rethrow_if_failed();
  if (now_ < deadline) now_ = deadline;
}

void Simulation::shutdown() {
  if (tearing_down_) return;
  tearing_down_ = true;
  // Destroy suspended root frames. Destruction recursively destroys child
  // task frames and runs awaiter destructors, which deregister from sync
  // primitives (all still alive at this point by the documented ownership
  // convention: Simulation members are declared before the components its
  // coroutines reference, or shutdown() is called explicitly first).
  auto roots = std::move(live_roots_);
  live_roots_.clear();
  for (void* addr : roots) {
    std::coroutine_handle<>::from_address(addr).destroy();
  }
}

}  // namespace nlc::sim
