// Deterministic discrete-event simulation kernel.
//
// One Simulation instance models a whole distributed deployment (primary
// host, backup host, client host, links). Components schedule callbacks at
// simulated times and run coroutines (`task<>`) whose awaitables suspend
// until a later simulated time or until signalled by another component.
//
// Failure domains: every scheduled wakeup may be tagged with a Domain.
// Killing a Domain (fail-stop host crash) silently discards all of its
// pending and future wakeups, freezing that host's coroutines exactly the
// way a crashed machine freezes its threads. Untagged events (the "wire",
// surviving hosts) keep running.
//
// Determinism: events with equal timestamps fire in scheduling order (FIFO
// by a monotone sequence number). There is no wall-clock or address-based
// ordering anywhere.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/task.hpp"
#include "util/assert.hpp"
#include "util/time.hpp"

namespace nlc::sim {

class Simulation;

/// A fail-stop failure domain (typically: one host). All coroutine wakeups
/// and timers belonging to a dead domain are discarded.
class Domain {
 public:
  explicit Domain(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  bool alive() const { return alive_; }
  /// Fail-stop kill: no code of this domain runs after this call.
  void kill() { alive_ = false; }
  /// Used by tests that restart a domain between trials.
  void revive() { alive_ = true; }

 private:
  std::string name_;
  bool alive_ = true;
};

using DomainPtr = std::shared_ptr<Domain>;

/// Handle to a scheduled callback; allows cancellation.
class TimerHandle {
 public:
  TimerHandle() = default;

  void cancel() {
    if (auto s = state_.lock()) s->cancelled = true;
  }
  bool active() const {
    auto s = state_.lock();
    return s && !s->cancelled && !s->fired;
  }

 private:
  friend class Simulation;
  struct State {
    std::function<void()> fn;
    DomainPtr domain;
    bool cancelled = false;
    bool fired = false;
  };
  explicit TimerHandle(std::weak_ptr<State> s) : state_(std::move(s)) {}
  std::weak_ptr<State> state_;
};

class Simulation {
 public:
  Simulation();
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `fn` at absolute simulated time `t` (>= now). A null domain
  /// means the callback always runs; otherwise it is discarded if the
  /// domain is dead when the time arrives.
  TimerHandle call_at(Time t, DomainPtr domain, std::function<void()> fn);
  TimerHandle call_after(Time delay, DomainPtr domain,
                         std::function<void()> fn);
  TimerHandle call_at(Time t, std::function<void()> fn) {
    return call_at(t, nullptr, std::move(fn));
  }
  TimerHandle call_after(Time delay, std::function<void()> fn) {
    return call_after(delay, nullptr, std::move(fn));
  }

  /// Starts a root coroutine, associated with `domain` (may be null).
  /// The coroutine runs synchronously up to its first suspension point.
  void spawn(DomainPtr domain, task<> t);
  void spawn(task<> t) { spawn(nullptr, std::move(t)); }

  /// Runs events until the queue is empty or a stop is requested.
  /// Rethrows the first exception that escaped a spawned coroutine.
  void run();
  /// Runs events with time <= `deadline`; afterwards now() == deadline
  /// unless the queue drained earlier or a coroutine failed.
  void run_until(Time deadline);
  /// Processes a single event; returns false if the queue is empty.
  bool step();
  /// Requests run()/run_until() to return after the current event.
  void stop() { stop_requested_ = true; }

  /// Awaitable: suspend the calling coroutine for `delay` of simulated time.
  /// The wakeup inherits the coroutine's current domain.
  auto sleep_for(Time delay) { return SleepAwaiter{this, now_ + delay}; }
  auto sleep_until(Time t) { return SleepAwaiter{this, t}; }

  /// Domain of the coroutine/callback currently executing (null outside).
  const DomainPtr& current_domain() const { return current_domain_; }

  /// Schedules a coroutine wakeup at `t` under `domain`. Used by the sync
  /// primitives; prefer those in application code.
  void schedule_resume(Time t, DomainPtr domain, std::coroutine_handle<> h);

  /// Destroys all still-live root coroutine frames. Must be called (or the
  /// destructor will call it) before the components the coroutines
  /// reference are destroyed.
  void shutdown();

  bool tearing_down() const { return tearing_down_; }

  /// Number of events processed since construction (for tests/diagnostics).
  std::uint64_t events_processed() const { return events_processed_; }

  /// Invariant-audit probe (src/check): runs `probe` after every
  /// `every_events`-th processed event, outside any coroutine, so an
  /// InvariantError it throws escapes run() directly. Pass a null function
  /// to disable (the default; the dispatcher then pays a single branch).
  void set_audit_probe(std::function<void()> probe,
                       std::uint64_t every_events = 1024) {
    NLC_CHECK(every_events > 0);
    audit_probe_ = std::move(probe);
    audit_probe_every_ = every_events;
    events_since_probe_ = 0;
  }

  /// Selects between the fast path (the default: dedicated coroutine-
  /// resume queue entry plus the same-time FIFO lane) and the legacy cost
  /// model, which wraps every resume in a heap-allocated `std::function`
  /// callback and sifts every event through the heap. The legacy path is
  /// kept for the engine microbenchmark and the determinism regression
  /// test; both paths produce identical event sequences.
  void set_resume_fast_path(bool on) { resume_fast_path_ = on; }
  bool resume_fast_path() const { return resume_fast_path_; }

 private:
  // A queue entry is either a timer callback (`resume` null, `ref` holds a
  // TimerHandle::State) or a plain coroutine resume (`resume` set, `ref`
  // holds the Domain or is null). Resumes are by far the most common event
  // — every sleep_for and every sync-primitive wakeup — so they get a
  // dedicated representation that needs no shared_ptr<State> and no
  // type-erased std::function allocation. The single type-erased `ref`
  // slot keeps the entry at 48 bytes with one smart-pointer move per heap
  // sift level instead of two.
  struct QueueEntry {
    Time time = 0;
    std::uint64_t seq = 0;
    std::coroutine_handle<> resume{};
    std::shared_ptr<void> ref;  // Domain (fast path) or TimerHandle::State
  };

  // Flat 4-ary min-heap on (time, seq). (time, seq) is a strict total
  // order — seq is unique — so the pop sequence is identical for any heap
  // arity; d=4 halves the sift depth versus a binary heap, and sifts move
  // a hole instead of swapping, so each level costs one entry move.
  class ReadyQueue {
   public:
    void reserve(std::size_t n) { v_.reserve(n); }
    bool empty() const { return v_.empty(); }
    const QueueEntry& top() const { return v_.front(); }

    void push(QueueEntry e) {
      std::size_t i = v_.size();
      v_.push_back(std::move(e));
      QueueEntry hole = std::move(v_[i]);
      while (i > 0) {
        std::size_t parent = (i - 1) / kArity;
        if (!before(hole, v_[parent])) break;
        v_[i] = std::move(v_[parent]);
        i = parent;
      }
      v_[i] = std::move(hole);
    }

    QueueEntry pop_top() {
      QueueEntry out = std::move(v_.front());
      QueueEntry last = std::move(v_.back());
      v_.pop_back();
      if (!v_.empty()) sift_down(std::move(last));
      return out;
    }

   private:
    static constexpr std::size_t kArity = 4;
    static bool before(const QueueEntry& a, const QueueEntry& b) {
      if (a.time != b.time) return a.time < b.time;
      return a.seq < b.seq;
    }
    void sift_down(QueueEntry hole) {
      std::size_t i = 0;
      const std::size_t n = v_.size();
      for (;;) {
        std::size_t first = i * kArity + 1;
        if (first >= n) break;
        std::size_t last = first + kArity < n ? first + kArity : n;
        std::size_t min = first;
        for (std::size_t c = first + 1; c < last; ++c) {
          if (before(v_[c], v_[min])) min = c;
        }
        if (!before(v_[min], hole)) break;
        v_[i] = std::move(v_[min]);
        i = min;
      }
      v_[i] = std::move(hole);
    }
    std::vector<QueueEntry> v_;
  };

  struct SleepAwaiter {
    Simulation* sim;
    Time wake_time;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      sim->schedule_resume(wake_time, sim->current_domain(), h);
    }
    void await_resume() const noexcept {}
  };

  // Root-coroutine driver: runs eagerly, self-destroys on completion.
  struct RootDriver {
    struct promise_type {
      RootDriver get_return_object() { return {}; }
      std::suspend_never initial_suspend() noexcept { return {}; }
      std::suspend_never final_suspend() noexcept { return {}; }
      void return_void() noexcept {}
      void unhandled_exception() noexcept { std::terminate(); }
    };
  };
  RootDriver drive(task<> t);

  struct SelfHandle {
    std::coroutine_handle<> h;
    bool await_ready() const noexcept { return false; }
    bool await_suspend(std::coroutine_handle<> hh) noexcept {
      h = hh;
      return false;  // do not actually suspend; we only want the handle
    }
    std::coroutine_handle<> await_resume() const noexcept { return h; }
  };

  void register_root(std::coroutine_handle<> h);
  void unregister_root(std::coroutine_handle<> h);
  void record_exception(std::exception_ptr e);
  void rethrow_if_failed();
  bool dispatch(QueueEntry& entry);
  void enqueue(QueueEntry entry);
  bool pop_next(QueueEntry& out, Time limit);

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::function<void()> audit_probe_;
  std::uint64_t audit_probe_every_ = 1024;
  std::uint64_t events_since_probe_ = 0;
  bool stop_requested_ = false;
  bool tearing_down_ = false;
  bool resume_fast_path_ = true;
  DomainPtr current_domain_;
  std::exception_ptr pending_exception_;
  ReadyQueue queue_;
  // Same-time lane: entries scheduled at exactly now_ (sync-primitive
  // hand-offs, call_after(0)) skip the heap entirely — they are drained in
  // FIFO order before time advances. Correct by seq monotonicity: while
  // now_ == T every push at T lands here, so heap entries at T (pushed
  // strictly before now_ reached T) always carry smaller seqs and are
  // popped first.
  std::vector<QueueEntry> now_queue_;
  std::size_t now_head_ = 0;
  // Live root coroutine frames in registration order (perturbed only by
  // the deterministic swap-erase in unregister_root), so shutdown()
  // destroys frames — and runs their destructor side effects — in an order
  // that never depends on frame allocation addresses. The index map exists
  // for O(1) identity lookup only; nothing ever iterates it.
  // NLC_LINT_OK(ptr-key): identity-lookup index; iteration uses live_roots_
  std::unordered_map<void*, std::size_t> root_index_;
  std::vector<void*> live_roots_;
};

}  // namespace nlc::sim
