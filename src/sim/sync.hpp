// Coroutine synchronization primitives for the simulator.
//
// All wakeups go through the simulation event queue (at the current
// simulated time) and inherit the waiting coroutine's failure domain, so a
// coroutine on a crashed host is never resumed by a surviving peer.
//
// Lifetime convention: a primitive must outlive the coroutine frames that
// wait on it. Awaiter destructors deregister themselves, so destroying a
// suspended coroutine (Simulation::shutdown) is safe while the primitive is
// alive.
#pragma once

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "sim/simulation.hpp"
#include "sim/task.hpp"
#include "util/assert.hpp"

namespace nlc::sim {

namespace detail {

/// Intrusive list node shared by all awaiters that park in a wait list.
struct ParkedWaiter {
  std::coroutine_handle<> handle;
  DomainPtr domain;
};

}  // namespace detail

/// One-shot event: waiters suspend until set() is called; waits after set()
/// complete immediately. reset() re-arms it (used by per-epoch barriers).
class Event {
 public:
  explicit Event(Simulation& sim) : sim_(&sim) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  bool is_set() const { return set_; }

  void set() {
    if (set_) return;
    set_ = true;
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto* w : waiters) {
      sim_->schedule_resume(sim_->now(), w->domain, w->handle);
    }
  }

  void reset() {
    NLC_CHECK_MSG(waiters_.empty(), "resetting an Event with parked waiters");
    set_ = false;
  }

  auto wait() { return Awaiter{this}; }

 private:
  struct Awaiter : detail::ParkedWaiter {
    Event* ev;
    bool parked = false;

    explicit Awaiter(Event* e) : ev(e) {}
    Awaiter(Awaiter&&) = delete;
    ~Awaiter() {
      if (parked) ev->remove(this);
    }

    bool await_ready() const noexcept { return ev->set_; }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      domain = ev->sim_->current_domain();
      ev->waiters_.push_back(this);
      parked = true;
    }
    void await_resume() noexcept { parked = false; }
  };

  void remove(Awaiter* w) {
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
      if (*it == w) {
        waiters_.erase(it);
        return;
      }
    }
  }

  Simulation* sim_;
  bool set_ = false;
  std::vector<Awaiter*> waiters_;
};

/// Level-triggered gate: coroutines pass while open, park while closed.
/// Models "network input blocked during checkpointing" and similar valves.
class Gate {
 public:
  explicit Gate(Simulation& sim, bool open = true) : sim_(&sim), open_(open) {}
  Gate(const Gate&) = delete;
  Gate& operator=(const Gate&) = delete;

  bool is_open() const { return open_; }

  void open() {
    if (open_) return;
    open_ = true;
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto* w : waiters) {
      sim_->schedule_resume(sim_->now(), w->domain, w->handle);
    }
  }

  void close() { open_ = false; }

  /// Awaitable that completes when the gate is (or becomes) open. Note the
  /// level-trigger semantics: a waiter released by open() proceeds even if
  /// the gate closes again before its wakeup fires, matching a packet that
  /// already passed the qdisc.
  auto passage() { return Awaiter{this}; }

 private:
  struct Awaiter : detail::ParkedWaiter {
    Gate* gate;
    bool parked = false;

    explicit Awaiter(Gate* g) : gate(g) {}
    Awaiter(Awaiter&&) = delete;
    ~Awaiter() {
      if (parked) gate->remove(this);
    }

    bool await_ready() const noexcept { return gate->open_; }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      domain = gate->sim_->current_domain();
      gate->waiters_.push_back(this);
      parked = true;
    }
    void await_resume() noexcept { parked = false; }
  };

  void remove(Awaiter* w) {
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
      if (*it == w) {
        waiters_.erase(it);
        return;
      }
    }
  }

  Simulation* sim_;
  bool open_;
  std::vector<Awaiter*> waiters_;
};

/// Unbounded FIFO channel with direct hand-off to parked receivers.
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Simulation& sim) : sim_(&sim) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  void send(T value) {
    if (!waiters_.empty()) {
      NLC_CHECK(queue_.empty());
      Awaiter* w = waiters_.front();
      waiters_.erase(waiters_.begin());
      w->parked = false;
      w->value.emplace(std::move(value));
      sim_->schedule_resume(sim_->now(), w->domain, w->handle);
      return;
    }
    queue_.push_back(std::move(value));
  }

  /// Awaitable receive; FIFO among waiters; values are handed directly to
  /// the receiver so no wakeup can be "stolen" by a later recv.
  auto recv() { return Awaiter{this}; }

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

  /// Non-blocking receive.
  std::optional<T> try_recv() {
    if (queue_.empty()) return std::nullopt;
    T v = std::move(queue_.front());
    queue_.pop_front();
    return v;
  }

 private:
  struct Awaiter : detail::ParkedWaiter {
    Mailbox* mb;
    std::optional<T> value;
    bool parked = false;

    explicit Awaiter(Mailbox* m) : mb(m) {}
    Awaiter(Awaiter&&) = delete;
    ~Awaiter() {
      if (parked) mb->remove(this);
    }

    bool await_ready() {
      if (!mb->queue_.empty()) {
        value.emplace(std::move(mb->queue_.front()));
        mb->queue_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      domain = mb->sim_->current_domain();
      mb->waiters_.push_back(this);
      parked = true;
    }
    T await_resume() {
      NLC_CHECK_MSG(value.has_value(), "mailbox wakeup without a value");
      return std::move(*value);
    }
  };

  void remove(Awaiter* w) {
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
      if (*it == w) {
        waiters_.erase(it);
        return;
      }
    }
  }

  Simulation* sim_;
  std::deque<T> queue_;
  std::vector<Awaiter*> waiters_;
};

/// Counts outstanding work items; wait() completes when the count is zero.
class WaitGroup {
 public:
  explicit WaitGroup(Simulation& sim) : event_(sim) {
    event_.set();  // zero outstanding => already complete
  }

  void add(int n = 1) {
    NLC_CHECK(n >= 0);
    if (n == 0) return;
    if (count_ == 0) event_.reset();
    count_ += n;
  }

  void done() {
    NLC_CHECK_MSG(count_ > 0, "WaitGroup::done without matching add");
    if (--count_ == 0) event_.set();
  }

  int count() const { return count_; }

  auto wait() { return event_.wait(); }

 private:
  Event event_;
  int count_ = 0;
};

}  // namespace nlc::sim
